//! # lp-bench — experiment regeneration harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I (ordering-constraint census) |
//! | `table2` | Table II (configuration flags) |
//! | `fig1` | Fig. 1 (execution-model timelines) |
//! | `fig2` | Fig. 2 (GEOMEAN speedups, non-numeric) |
//! | `fig3` | Fig. 3 (GEOMEAN speedups, numeric) |
//! | `fig4` | Fig. 4 (per-benchmark best PDOALL vs best HELIX) |
//! | `fig5` | Fig. 5 (dynamic coverage) |
//! | `ablations` | DESIGN.md ablations (cactus stack, DOACROSS deltas, predictors) |
//!
//! Every binary accepts an optional scale argument (`test`, `small`,
//! `default`), a `--jobs N` worker count for the parallel sweep engine
//! (default: `LP_JOBS` or the machine's available parallelism; output is
//! byte-identical for any value), a `--profile-cache DIR` persistent
//! profile store (see `lp_runtime::store`; `LP_PROFILE_CACHE=off|ro|rw`
//! selects the mode), plus the shared observability flags
//! `--trace-out FILE` (Chrome `trace_event` JSON), `--explain-out FILE`
//! (limiter-attribution JSON, where supported), `--snapshot-out FILE`
//! (cross-run registry snapshot, diffable with `lpstudy diff`), and
//! `--quiet`; the
//! `LP_LOG` environment variable (`off`, `info`, `debug`) filters
//! progress output. Criterion performance benches live in `benches/`.

use loopapalooza::Study;
use lp_obs::{lp_debug, lp_info, lp_warn};
use lp_runtime::{
    Attribution, Config, EvalOptions, EvalReport, ExecModel, Export, Jobs, Profile, ProfileStore,
    StoreMode, SweepPoint, SweepUnit,
};
use lp_suite::{Benchmark, Scale, SuiteId};
use std::path::{Path, PathBuf};

/// How a binary treats arguments the shared [`Cli`] parser did not
/// consume (see [`FlagSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtraArgs {
    /// Leftover arguments are a usage error (exit 2).
    Rejected,
    /// Leftover arguments are the binary's own positionals ([`Cli::rest`]).
    Passthrough,
}

/// Declarative per-binary command-line contract. One row per experiment
/// binary, checked by [`Cli::enforce`] — replacing the old ad-hoc
/// `reject_explain_out` / `expect_no_extra_args` call pairs whose
/// correctness depended on call order in every `main`.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// Binary name as invoked (and as printed in usage errors).
    pub binary: &'static str,
    /// Whether the binary has a limiter attribution to export
    /// (`--explain-out`).
    pub explain_out: bool,
    /// What happens to unconsumed arguments.
    pub extra: ExtraArgs,
}

/// The command-line contract of every experiment binary, in one place.
pub const FLAG_SPECS: &[FlagSpec] = &[
    FlagSpec {
        binary: "table1",
        explain_out: false,
        extra: ExtraArgs::Rejected,
    },
    FlagSpec {
        binary: "table2",
        explain_out: false,
        extra: ExtraArgs::Rejected,
    },
    FlagSpec {
        binary: "fig1",
        explain_out: false,
        extra: ExtraArgs::Rejected,
    },
    FlagSpec {
        binary: "fig2",
        explain_out: false,
        extra: ExtraArgs::Rejected,
    },
    FlagSpec {
        binary: "fig3",
        explain_out: false,
        extra: ExtraArgs::Rejected,
    },
    FlagSpec {
        binary: "fig4",
        explain_out: true,
        extra: ExtraArgs::Rejected,
    },
    FlagSpec {
        binary: "fig5",
        explain_out: true,
        extra: ExtraArgs::Rejected,
    },
    FlagSpec {
        binary: "ablations",
        explain_out: false,
        extra: ExtraArgs::Rejected,
    },
    FlagSpec {
        binary: "scaling",
        explain_out: false,
        extra: ExtraArgs::Rejected,
    },
    FlagSpec {
        binary: "sweep",
        explain_out: false,
        extra: ExtraArgs::Passthrough,
    },
    FlagSpec {
        binary: "lpstudy",
        explain_out: true,
        extra: ExtraArgs::Passthrough,
    },
    FlagSpec {
        binary: "lpbench",
        explain_out: false,
        extra: ExtraArgs::Passthrough,
    },
];

impl FlagSpec {
    /// Looks up the contract of one binary.
    #[must_use]
    pub fn of(binary: &str) -> Option<&'static FlagSpec> {
        FLAG_SPECS.iter().find(|s| s.binary == binary)
    }
}

/// Shared command line of the experiment binaries: an optional scale
/// positional (`test`, `small`, `default`) plus the observability flags.
/// Anything unrecognized lands in [`Cli::rest`]; each binary's
/// [`FlagSpec`] (enforced via [`Cli::enforce`]) says whether that is a
/// usage error or its own positionals (`lpstudy`, `sweep`).
#[derive(Debug, Clone)]
pub struct Cli {
    /// Benchmark scale (default [`Scale::Default`]).
    pub scale: Scale,
    /// Where to write the Chrome `trace_event` JSON, if requested.
    pub trace_out: Option<PathBuf>,
    /// Where to write the limiter-attribution JSON (`--explain-out`), if
    /// requested. Binaries that support it also write a
    /// flamegraph-compatible collapsed-stack file next to it.
    pub explain_out: Option<PathBuf>,
    /// `--quiet` suppresses all progress logging.
    pub quiet: bool,
    /// Explicit `--jobs N` worker count, if given (see [`Cli::jobs`]).
    pub jobs: Option<usize>,
    /// Explicit `--profile-cache DIR` store directory, if given (see
    /// [`Cli::store`]).
    pub profile_cache: Option<PathBuf>,
    /// Where to dump the flight-recorder journal (`--flight-out`), if
    /// requested. The journal is also dumped there on panic or SIGUSR1.
    pub flight_out: Option<PathBuf>,
    /// Where to write the Prometheus text exposition of the metrics
    /// registry (`--metrics-out`), if requested.
    pub metrics_out: Option<PathBuf>,
    /// Where to write the cross-run registry snapshot
    /// (`--snapshot-out`, schema `lp-snapshot-v1`), if requested — the
    /// input format of `lpstudy diff` and `lpstudy audit`.
    pub snapshot_out: Option<PathBuf>,
    /// Explicit `--sample-hz N` self-profiler sampling rate, if given
    /// (consumed by `lpstudy dispatch-heat`).
    pub sample_hz: Option<u64>,
    /// Interpreter engine: explicit `--engine tree|bc` wins, else the
    /// `LP_ENGINE` environment variable, else the default (`bc`).
    /// Output is byte-identical for either engine — `tree` is the
    /// reference oracle, `bc` only trades compile time for dispatch
    /// speed.
    pub engine: lp_interp::Engine,
    /// Arguments this parser did not consume, in order.
    pub rest: Vec<String>,
}

impl Cli {
    /// Default on-disk budget for the profile cache, enforced by a gc
    /// pass every time a store is opened: 256 MiB holds thousands of
    /// EEMBC-sized entries while bounding unattended growth.
    pub const STORE_GC_BUDGET_BYTES: u64 = 256 * 1024 * 1024;

    /// Parses `std::env::args()` and initializes the log filter
    /// (`--quiet` wins over `LP_LOG`).
    #[must_use]
    pub fn parse() -> Cli {
        Cli::parse_from(std::env::args().skip(1))
    }

    /// As [`Cli::parse`] over explicit arguments (tests).
    ///
    /// # Panics
    /// Exits the process when `--trace-out` is missing its file operand.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut cli = Cli {
            scale: Scale::Default,
            trace_out: None,
            explain_out: None,
            quiet: false,
            jobs: None,
            profile_cache: None,
            flight_out: None,
            metrics_out: None,
            snapshot_out: None,
            sample_hz: None,
            engine: lp_interp::Engine::default(),
            rest: Vec::new(),
        };
        let mut engine_explicit = false;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quiet" => cli.quiet = true,
                "--trace-out" => match args.next() {
                    Some(path) => cli.trace_out = Some(PathBuf::from(path)),
                    None => {
                        eprintln!("--trace-out requires a file argument");
                        std::process::exit(2);
                    }
                },
                "--explain-out" => match args.next() {
                    Some(path) => cli.explain_out = Some(PathBuf::from(path)),
                    None => {
                        eprintln!("--explain-out requires a file argument");
                        std::process::exit(2);
                    }
                },
                "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => cli.jobs = Some(n),
                    // An explicit zero clamps to serial (with a warning
                    // from `Jobs::resolve`) rather than erroring out:
                    // scripts that compute a worker count can floor at 0
                    // without special-casing. Non-numeric input is still
                    // a usage error.
                    Some(0) => cli.jobs = Some(0),
                    _ => {
                        eprintln!("--jobs requires a non-negative integer argument");
                        std::process::exit(2);
                    }
                },
                "--profile-cache" => match args.next() {
                    Some(dir) => cli.profile_cache = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("--profile-cache requires a directory argument");
                        std::process::exit(2);
                    }
                },
                "--flight-out" => match args.next() {
                    Some(path) => cli.flight_out = Some(PathBuf::from(path)),
                    None => {
                        eprintln!("--flight-out requires a file argument");
                        std::process::exit(2);
                    }
                },
                "--metrics-out" => match args.next() {
                    Some(path) => cli.metrics_out = Some(PathBuf::from(path)),
                    None => {
                        eprintln!("--metrics-out requires a file argument");
                        std::process::exit(2);
                    }
                },
                "--snapshot-out" => match args.next() {
                    Some(path) => cli.snapshot_out = Some(PathBuf::from(path)),
                    None => {
                        eprintln!("--snapshot-out requires a file argument");
                        std::process::exit(2);
                    }
                },
                "--sample-hz" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                    Some(n) if n >= 1 => cli.sample_hz = Some(n),
                    _ => {
                        eprintln!("--sample-hz requires a positive integer argument");
                        std::process::exit(2);
                    }
                },
                "--engine" => match args.next().as_deref().map(lp_interp::Engine::parse) {
                    Some(Ok(engine)) => {
                        cli.engine = engine;
                        engine_explicit = true;
                    }
                    Some(Err(bad)) => {
                        eprintln!("--engine {bad:?} is not an engine (expected tree|bc)");
                        std::process::exit(2);
                    }
                    None => {
                        eprintln!("--engine requires an argument (tree|bc)");
                        std::process::exit(2);
                    }
                },
                "test" => cli.scale = Scale::Test,
                "small" => cli.scale = Scale::Small,
                "default" => cli.scale = Scale::Default,
                _ => cli.rest.push(arg),
            }
        }
        // Engine resolution: explicit `--engine` > `LP_ENGINE` > default
        // (bc). The tree walk stays available as the reference oracle.
        let mut engine_implicit_env = false;
        if !engine_explicit {
            if let Ok(spec) = std::env::var("LP_ENGINE") {
                match lp_interp::Engine::parse(&spec) {
                    Ok(engine) => {
                        cli.engine = engine;
                        engine_implicit_env = true;
                    }
                    Err(bad) => {
                        eprintln!("LP_ENGINE={bad:?} is not an engine (expected tree|bc)");
                        std::process::exit(2);
                    }
                }
            }
        }
        lp_obs::log::init(cli.quiet);
        if engine_implicit_env && cli.engine == lp_interp::Engine::Tree {
            // One-release deprecation notice: the default engine is now
            // bc, so implicit tree selection deserves a heads-up (an
            // explicit `--engine tree` stays silent — that's the
            // reference-oracle spelling).
            lp_warn!("engine tree selected implicitly via LP_ENGINE; the default engine is now bc — pass --engine tree for the reference oracle");
        }
        if let Some(path) = &cli.flight_out {
            // Arms the panic hook and SIGUSR1 handler in addition to the
            // end-of-run dump in `Cli::finish`.
            lp_obs::journal::arm(path);
        }
        cli
    }

    /// The machine configuration this command line asked for: defaults
    /// plus the selected `--engine`.
    #[must_use]
    pub fn machine_config(&self) -> lp_interp::MachineConfig {
        lp_interp::MachineConfig {
            engine: self.engine,
            ..lp_interp::MachineConfig::default()
        }
    }

    /// The resolved sweep worker count: explicit `--jobs N`, else the
    /// `LP_JOBS` environment variable, else the machine's available
    /// parallelism (see [`Jobs::resolve`]). Output is byte-identical for
    /// any value — the knob only trades wall-clock time.
    #[must_use]
    pub fn jobs(&self) -> Jobs {
        Jobs::resolve(self.jobs)
    }

    /// The persistent profile store requested on this command line, if
    /// any: `LP_PROFILE_CACHE=off|ro|rw` selects the mode (default
    /// [`StoreMode::ReadWrite`] when `--profile-cache DIR` was given,
    /// else off — no binary touches the filesystem unless asked);
    /// `--profile-cache DIR` overrides the default directory
    /// (`results/.lp-cache`). A store that cannot be opened degrades to
    /// `None` with a warning — never an error exit.
    ///
    /// # Panics
    /// Exits the process with a usage error (2) when `LP_PROFILE_CACHE`
    /// holds an unrecognized value.
    #[must_use]
    pub fn store(&self) -> Option<ProfileStore> {
        let mode = match StoreMode::from_env() {
            Ok(Some(mode)) => mode,
            Ok(None) if self.profile_cache.is_some() => StoreMode::ReadWrite,
            Ok(None) => return None,
            Err(bad) => {
                eprintln!("LP_PROFILE_CACHE={bad:?} is not a store mode (expected off|ro|rw)");
                std::process::exit(2);
            }
        };
        if mode == StoreMode::Off {
            return None;
        }
        let dir = self
            .profile_cache
            .clone()
            .unwrap_or_else(|| PathBuf::from(ProfileStore::DEFAULT_DIR));
        match ProfileStore::open(&dir, mode) {
            Ok(store) => {
                // Bound the cache on every open so it cannot grow without
                // limit across runs. Under budget this is one metadata
                // sweep (counted as `store_gc_skipped`); failures only
                // warn — a full disk should not fail the study run.
                match store.gc(Self::STORE_GC_BUDGET_BYTES) {
                    Ok(0) => {}
                    Ok(n) => lp_info!("profile store: gc reclaimed {n} bytes"),
                    Err(e) => {
                        lp_warn!("profile store gc failed in {} ({e})", dir.display());
                    }
                }
                Some(store)
            }
            Err(e) => {
                lp_warn!(
                    "cannot open profile store {} ({e}); running without a cache",
                    dir.display()
                );
                None
            }
        }
    }

    fn fail_extra_args(&self) {
        if let Some(extra) = self.rest.first() {
            eprintln!(
                "unknown argument {extra:?} (expected test|small|default, --jobs N, \
                 --engine tree|bc, --trace-out FILE, --explain-out FILE, \
                 --profile-cache DIR, --flight-out FILE, --metrics-out FILE, \
                 --snapshot-out FILE, --sample-hz N, --quiet)"
            );
            std::process::exit(2);
        }
    }

    fn fail_explain_out(&self, binary: &str) {
        if self.explain_out.is_some() {
            eprintln!("{binary} does not support --explain-out (use lpstudy, fig4, or fig5)");
            std::process::exit(2);
        }
    }

    /// Checks this command line against the binary's [`FlagSpec`] table
    /// row: leftover arguments first (when [`ExtraArgs::Rejected`]), then
    /// `--explain-out` support — the same order the binaries used to
    /// hand-roll, so the diagnostics are unchanged.
    ///
    /// # Panics
    /// Panics when `binary` has no [`FLAG_SPECS`] row (a programming
    /// error, not a user one); exits the process with a usage error (2)
    /// when the command line violates the spec.
    pub fn enforce(&self, binary: &str) -> &'static FlagSpec {
        let spec = FlagSpec::of(binary)
            .unwrap_or_else(|| panic!("binary {binary:?} has no FLAG_SPECS row"));
        if spec.extra == ExtraArgs::Rejected {
            self.fail_extra_args();
        }
        if !spec.explain_out {
            self.fail_explain_out(spec.binary);
        }
        spec
    }

    /// Rejects leftover arguments (binaries without their own positionals).
    ///
    /// # Panics
    /// Exits the process with a usage error when [`Cli::rest`] is non-empty.
    #[deprecated(note = "use `Cli::enforce` with the binary's `FLAG_SPECS` row")]
    pub fn expect_no_extra_args(&self) {
        self.fail_extra_args();
    }

    /// Rejects `--explain-out` in binaries that have no attribution to
    /// export (everything except `lpstudy`, `fig4`, and `fig5`).
    ///
    /// # Panics
    /// Exits the process with a usage error when the flag was given.
    #[deprecated(note = "use `Cli::enforce` with the binary's `FLAG_SPECS` row")]
    pub fn reject_explain_out(&self, binary: &str) {
        self.fail_explain_out(binary);
    }

    /// End-of-run hook: dumps the observability summary at debug level
    /// and writes the Chrome trace (`--trace-out`), the Prometheus text
    /// exposition (`--metrics-out`), and the flight-recorder journal
    /// (`--flight-out`) when requested.
    pub fn finish(&self, process: &str) {
        if lp_obs::log::enabled(lp_obs::Level::Debug) {
            eprint!("{}", lp_obs::summary(lp_obs::registry()));
        }
        if let Some(path) = &self.trace_out {
            match lp_obs::write_chrome_trace(path, process) {
                Ok(()) => lp_info!("wrote Chrome trace to {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write trace to {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &self.metrics_out {
            match std::fs::write(path, lp_obs::prometheus::render_global()) {
                Ok(()) => lp_info!("wrote metrics exposition to {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write metrics to {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &self.snapshot_out {
            match lp_obs::snapshot::capture_global(process).write(path) {
                Ok(()) => lp_info!("wrote registry snapshot to {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write snapshot to {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &self.flight_out {
            match lp_obs::journal::global().write_dump(path) {
                Ok(()) => lp_info!("wrote flight-recorder dump to {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write flight dump to {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }
}

/// Writes the limiter-attribution export requested via `--explain-out`:
/// `path` receives `{"attributions": [...]}` — hand-rolled JSON, one
/// object per evaluated `(model, config)` pair — and, when a profile is
/// supplied, a flamegraph-compatible collapsed-stack rendering of the
/// *last* attribution is written next to it under the `collapsed`
/// extension.
///
/// # Panics
/// Exits the process when a file cannot be written (mirrors the trace
/// handling in [`Cli::finish`]).
pub fn write_explain(path: &Path, attrs: &[Attribution], profile: Option<&Profile>) {
    let parts: Vec<String> = attrs.iter().map(Export::to_json).collect();
    let json = format!("{{\"attributions\":[{}]}}\n", parts.join(","));
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write explain JSON to {}: {e}", path.display());
        std::process::exit(1);
    }
    lp_info!("wrote limiter attribution to {}", path.display());
    if let (Some(profile), Some(attr)) = (profile, attrs.last()) {
        let collapsed_path = path.with_extension("collapsed");
        if let Err(e) = std::fs::write(&collapsed_path, lp_runtime::collapsed_stacks(profile, attr))
        {
            eprintln!(
                "cannot write collapsed stacks to {}: {e}",
                collapsed_path.display()
            );
            std::process::exit(1);
        }
        lp_info!("wrote collapsed stacks to {}", collapsed_path.display());
    }
}

/// One profiled benchmark.
#[derive(Debug)]
pub struct SuiteRun {
    /// Benchmark name (e.g. `429.mcf`).
    pub name: &'static str,
    /// Owning suite.
    pub suite: SuiteId,
    /// The profiled study, ready for evaluation.
    pub study: Study,
}

/// Profiles the given benchmarks on `jobs` workers — each benchmark is
/// profiled exactly once — emitting a per-benchmark heartbeat
/// (`[i/total] name — elapsed, insts/s`) at `info` level. The returned
/// runs are in `benchmarks` order regardless of the worker count (the
/// heartbeats on stderr may interleave; stdout output never does).
/// When a persistent [`ProfileStore`] is supplied (see [`Cli::store`]),
/// each benchmark warm-starts from a cached profile when one exists and
/// persists its fresh profile otherwise.
///
/// # Panics
/// Panics if a benchmark fails to build or run — they are fixed program
/// text, covered by the suite's tests.
#[must_use]
pub fn run_benchmarks(
    benchmarks: &[Benchmark],
    scale: Scale,
    jobs: Jobs,
    store: Option<&ProfileStore>,
    engine: lp_interp::Engine,
) -> Vec<SuiteRun> {
    let total = benchmarks.len();
    let reg = lp_obs::registry();
    lp_runtime::parallel_map(benchmarks, jobs, |i, b| {
        lp_debug!("profiling {} ({}/{})", b.name, i + 1, total);
        let t0 = reg.now_ns();
        let module = b.build(scale);
        let config = lp_interp::MachineConfig {
            engine,
            ..lp_interp::MachineConfig::default()
        };
        let study = Study::with_store(&module, config, store)
            .unwrap_or_else(|e| panic!("benchmark {} failed: {e}", b.name));
        let secs = reg.now_ns().saturating_sub(t0) as f64 / 1e9;
        lp_info!(
            "[{}/{}] profiled {:<18} {:>6.2}s  {:>6.1}M insts/s",
            i + 1,
            total,
            b.name,
            secs,
            study.run_result().cost as f64 / 1e6 / secs.max(1e-9)
        );
        SuiteRun {
            name: b.name,
            suite: b.suite,
            study,
        }
    })
}

/// Profiles every benchmark of the given suites on `jobs` workers.
#[must_use]
pub fn run_suites(
    ids: &[SuiteId],
    scale: Scale,
    jobs: Jobs,
    store: Option<&ProfileStore>,
    engine: lp_interp::Engine,
) -> Vec<SuiteRun> {
    let benchmarks: Vec<Benchmark> = lp_suite::registry()
        .into_iter()
        .filter(|b| ids.contains(&b.suite))
        .collect();
    run_benchmarks(&benchmarks, scale, jobs, store, engine)
}

/// A precomputed `(run × row)` table of evaluation reports, built by one
/// parallel sweep over every `(benchmark, model, config)` point.
///
/// The figure binaries used to call `Study::evaluate` once per cell
/// while rendering; building the whole table up front through
/// [`lp_runtime::sweep_points`] lets all cells fan out over `--jobs`
/// workers against the shared profiles, and the deterministic merge
/// keeps every lookup — and therefore every rendered figure — identical
/// for any worker count.
#[derive(Debug)]
pub struct SweepTable {
    rows: Vec<(ExecModel, Config)>,
    /// `reports[run * rows.len() + row]`, in stable `(run, row)` order.
    reports: Vec<EvalReport>,
}

impl SweepTable {
    /// Evaluates every `(run, row)` cell on `jobs` workers.
    #[must_use]
    pub fn build(runs: &[SuiteRun], rows: &[(ExecModel, Config)], jobs: Jobs) -> SweepTable {
        let units: Vec<SweepUnit> = runs.iter().map(|r| r.study.sweep_unit()).collect();
        let points: Vec<SweepPoint> = (0..units.len())
            .flat_map(|unit| {
                rows.iter().map(move |&(model, config)| SweepPoint {
                    unit,
                    model,
                    config,
                })
            })
            .collect();
        let reports = lp_runtime::sweep_points(&units, &points, jobs, EvalOptions::default());
        SweepTable {
            rows: rows.to_vec(),
            reports,
        }
    }

    /// The evaluated rows, in table order.
    #[must_use]
    pub fn rows(&self) -> &[(ExecModel, Config)] {
        &self.rows
    }

    /// The report for one `(run, row)` cell.
    ///
    /// # Panics
    /// Panics if either index is out of bounds for the built table.
    #[must_use]
    pub fn report(&self, run: usize, row: usize) -> &EvalReport {
        assert!(row < self.rows.len(), "row {row} out of bounds");
        &self.reports[run * self.rows.len() + row]
    }

    /// Geometric-mean speedup over the runs of one suite for one row.
    #[must_use]
    pub fn geomean_speedup(&self, runs: &[SuiteRun], suite: SuiteId, row: usize) -> f64 {
        let values: Vec<f64> = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.suite == suite)
            .map(|(i, _)| self.report(i, row).speedup)
            .collect();
        lp_runtime::geomean(&values)
    }

    /// Geometric-mean coverage over the runs of one suite for one row.
    #[must_use]
    pub fn geomean_coverage(&self, runs: &[SuiteRun], suite: SuiteId, row: usize) -> f64 {
        let values: Vec<f64> = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.suite == suite)
            .map(|(i, _)| self.report(i, row).coverage.max(0.01))
            .collect();
        lp_runtime::geomean(&values)
    }
}

/// Renders a log-scale ASCII bar for a speedup figure (the figures in the
/// paper use a logarithmic axis).
#[must_use]
pub fn log_bar(value: f64, max: f64, width: usize) -> String {
    let v = value.max(1.0).ln();
    let m = max.max(1.0 + 1e-9).ln();
    let filled = ((v / m) * width as f64).round() as usize;
    let mut bar = "#".repeat(filled.min(width));
    if bar.is_empty() && value > 1.0 {
        bar.push('#');
    }
    bar
}

/// Geometric-mean speedup of `runs` restricted to `suite` under one row.
#[must_use]
pub fn suite_geomean_speedup(
    runs: &[SuiteRun],
    suite: SuiteId,
    model: lp_runtime::ExecModel,
    config: lp_runtime::Config,
) -> f64 {
    let values: Vec<f64> = runs
        .iter()
        .filter(|r| r.suite == suite)
        .map(|r| r.study.evaluate(model, config).speedup)
        .collect();
    lp_runtime::geomean(&values)
}

/// Geometric-mean coverage of `runs` restricted to `suite` under one row.
#[must_use]
pub fn suite_geomean_coverage(
    runs: &[SuiteRun],
    suite: SuiteId,
    model: lp_runtime::ExecModel,
    config: lp_runtime::Config,
) -> f64 {
    let values: Vec<f64> = runs
        .iter()
        .filter(|r| r.suite == suite)
        .map(|r| r.study.evaluate(model, config).coverage.max(0.01))
        .collect();
    lp_runtime::geomean(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parses_flags_scale_and_rest() {
        let cli = Cli::parse_from(
            [
                "--quiet",
                "small",
                "--trace-out",
                "/tmp/t.json",
                "--explain-out",
                "/tmp/e.json",
                "--jobs",
                "3",
                "--profile-cache",
                "/tmp/lp-cache",
                "--metrics-out",
                "/tmp/m.prom",
                "--snapshot-out",
                "/tmp/s.json",
                "--sample-hz",
                "997",
                "--engine",
                "tree",
                "--bench",
                "x.lp",
            ]
            .map(String::from),
        );
        assert!(cli.quiet);
        assert_eq!(cli.scale, Scale::Small);
        assert_eq!(cli.engine, lp_interp::Engine::Tree);
        assert_eq!(cli.machine_config().engine, lp_interp::Engine::Tree);
        assert_eq!(cli.jobs, Some(3));
        assert_eq!(cli.jobs().get(), 3);
        assert_eq!(
            cli.profile_cache.as_deref(),
            Some(std::path::Path::new("/tmp/lp-cache"))
        );
        assert_eq!(
            cli.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/t.json"))
        );
        assert_eq!(
            cli.explain_out.as_deref(),
            Some(std::path::Path::new("/tmp/e.json"))
        );
        assert_eq!(
            cli.metrics_out.as_deref(),
            Some(std::path::Path::new("/tmp/m.prom"))
        );
        assert_eq!(
            cli.snapshot_out.as_deref(),
            Some(std::path::Path::new("/tmp/s.json"))
        );
        assert_eq!(cli.sample_hz, Some(997));
        assert_eq!(cli.rest, vec!["--bench".to_string(), "x.lp".to_string()]);

        // With no flag (and no LP_ENGINE in the test environment) the
        // default engine is now the bytecode fast path.
        let cli = Cli::parse_from(std::iter::empty());
        assert_eq!(cli.scale, Scale::Default);
        assert_eq!(cli.engine, lp_interp::Engine::Bc);
        assert!(!cli.quiet && cli.trace_out.is_none() && cli.rest.is_empty());
        assert!(cli.explain_out.is_none());
        assert!(cli.jobs.is_none());
        assert!(cli.jobs().get() >= 1);
        assert!(cli.profile_cache.is_none());
        assert!(cli.flight_out.is_none() && cli.metrics_out.is_none() && cli.sample_hz.is_none());
        assert!(cli.snapshot_out.is_none());
        // Restore logging for the rest of the test process.
        lp_obs::log::set_level(lp_obs::Level::Off);
    }

    #[test]
    fn flag_specs_cover_every_binary_once() {
        let mut seen = std::collections::HashSet::new();
        for spec in FLAG_SPECS {
            assert!(seen.insert(spec.binary), "duplicate row {:?}", spec.binary);
        }
        assert_eq!(FLAG_SPECS.len(), 12);
        // The explain-capable binaries named in the usage message.
        for binary in ["lpstudy", "fig4", "fig5"] {
            assert!(FlagSpec::of(binary).unwrap().explain_out, "{binary}");
        }
        // Binaries with their own positionals pass extras through.
        for binary in ["lpstudy", "sweep", "lpbench"] {
            assert_eq!(
                FlagSpec::of(binary).unwrap().extra,
                ExtraArgs::Passthrough,
                "{binary}"
            );
        }
        assert!(FlagSpec::of("nonesuch").is_none());
    }

    #[test]
    fn store_is_off_unless_requested() {
        // Neither the flag nor LP_PROFILE_CACHE (the test harness does
        // not set it): no store, no filesystem side effects.
        let cli = Cli::parse_from(std::iter::empty());
        lp_obs::log::set_level(lp_obs::Level::Off);
        if std::env::var("LP_PROFILE_CACHE").is_err() {
            assert!(cli.store().is_none());
        }
        // With the flag: a read-write store rooted at the given path.
        let dir = std::env::temp_dir().join(format!("lp-bench-store-{}", std::process::id()));
        let cli = Cli::parse_from(["--profile-cache".to_string(), dir.display().to_string()]);
        lp_obs::log::set_level(lp_obs::Level::Off);
        if std::env::var("LP_PROFILE_CACHE").is_err() {
            let store = cli.store().expect("flag enables the store");
            assert_eq!(store.mode(), StoreMode::ReadWrite);
            assert_eq!(store.dir(), dir.as_path());
            assert!(dir.is_dir(), "rw open creates the directory");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn log_bar_is_monotone() {
        let short = log_bar(2.0, 100.0, 40).len();
        let long = log_bar(50.0, 100.0, 40).len();
        assert!(long > short);
        assert!(log_bar(1.0, 100.0, 40).is_empty());
        assert_eq!(log_bar(100.0, 100.0, 40).len(), 40);
    }

    #[test]
    fn write_explain_emits_valid_json_and_collapsed_stacks() {
        let bench = lp_suite::find("181.mcf").unwrap();
        let module = bench.build(Scale::Test);
        let study = Study::of(&module).unwrap();
        let (model, config) = lp_runtime::best_helix();
        let (_, attr) = study.explain(model, config);
        let path =
            std::env::temp_dir().join(format!("lp-bench-explain-{}.json", std::process::id()));
        write_explain(&path, std::slice::from_ref(&attr), Some(study.profile()));
        let json = std::fs::read_to_string(&path).unwrap();
        lp_obs::validate_json(&json).expect("explain JSON must be well-formed");
        assert!(json.contains("\"attributions\":["));
        let collapsed = std::fs::read_to_string(path.with_extension("collapsed")).unwrap();
        assert!(!collapsed.is_empty());
        for line in collapsed.lines() {
            let (_, weight) = line.rsplit_once(' ').expect("frames <space> weight");
            weight.parse::<u64>().expect("integer weight");
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("collapsed"));
    }

    #[test]
    fn harness_runs_one_suite() {
        let runs = run_suites(
            &[SuiteId::Eembc],
            Scale::Test,
            Jobs::serial(),
            None,
            lp_interp::Engine::Bc,
        );
        assert_eq!(runs.len(), 10);
        let (model, config) = lp_runtime::best_pdoall();
        let gm = suite_geomean_speedup(&runs, SuiteId::Eembc, model, config);
        assert!(gm >= 1.0);
    }

    #[test]
    fn sweep_table_matches_pointwise_evaluation_at_any_job_count() {
        let benchmarks: Vec<Benchmark> = ["eembc.matrix01", "eembc.rspeed01"]
            .iter()
            .map(|n| lp_suite::find(n).unwrap())
            .collect();
        let runs = run_benchmarks(
            &benchmarks,
            Scale::Test,
            Jobs::new(2),
            None,
            lp_interp::Engine::default(),
        );
        // Parallel profiling preserves input order.
        assert_eq!(runs[0].name, "eembc.matrix01");
        assert_eq!(runs[1].name, "eembc.rspeed01");
        let rows = lp_runtime::table2_rows();
        let serial = SweepTable::build(&runs, &rows, Jobs::serial());
        let parallel = SweepTable::build(&runs, &rows, Jobs::new(8));
        for (i, run) in runs.iter().enumerate() {
            for (j, &(model, config)) in rows.iter().enumerate() {
                let reference = run.study.evaluate(model, config);
                assert_eq!(
                    format!("{reference:?}"),
                    format!("{:?}", serial.report(i, j)),
                    "{} row {j} (serial)",
                    run.name
                );
                assert_eq!(
                    format!("{:?}", serial.report(i, j)),
                    format!("{:?}", parallel.report(i, j)),
                    "{} row {j} (jobs=8)",
                    run.name
                );
            }
            let gm = serial.geomean_speedup(&runs, SuiteId::Eembc, 0);
            assert!(gm >= 1.0);
            assert!(serial.geomean_coverage(&runs, SuiteId::Eembc, 0) >= 0.0);
        }
        assert_eq!(serial.rows().len(), rows.len());
    }
}
