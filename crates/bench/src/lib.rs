//! # lp-bench — experiment regeneration harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I (ordering-constraint census) |
//! | `table2` | Table II (configuration flags) |
//! | `fig1` | Fig. 1 (execution-model timelines) |
//! | `fig2` | Fig. 2 (GEOMEAN speedups, non-numeric) |
//! | `fig3` | Fig. 3 (GEOMEAN speedups, numeric) |
//! | `fig4` | Fig. 4 (per-benchmark best PDOALL vs best HELIX) |
//! | `fig5` | Fig. 5 (dynamic coverage) |
//! | `ablations` | DESIGN.md ablations (cactus stack, DOACROSS deltas, predictors) |
//!
//! Every binary accepts an optional scale argument (`test`, `small`,
//! `default`); Criterion performance benches live in `benches/`.

use loopapalooza::Study;
use lp_suite::{Benchmark, Scale, SuiteId};

/// One profiled benchmark.
#[derive(Debug)]
pub struct SuiteRun {
    /// Benchmark name (e.g. `429.mcf`).
    pub name: &'static str,
    /// Owning suite.
    pub suite: SuiteId,
    /// The profiled study, ready for evaluation.
    pub study: Study,
}

/// Profiles the given benchmarks, reporting progress on stderr.
///
/// # Panics
/// Panics if a benchmark fails to build or run — they are fixed program
/// text, covered by the suite's tests.
#[must_use]
pub fn run_benchmarks(benchmarks: &[Benchmark], scale: Scale) -> Vec<SuiteRun> {
    benchmarks
        .iter()
        .map(|b| {
            eprint!("  profiling {:<20}\r", b.name);
            let module = b.build(scale);
            let study = Study::of(&module)
                .unwrap_or_else(|e| panic!("benchmark {} failed: {e}", b.name));
            SuiteRun {
                name: b.name,
                suite: b.suite,
                study,
            }
        })
        .collect()
}

/// Profiles every benchmark of the given suites.
#[must_use]
pub fn run_suites(ids: &[SuiteId], scale: Scale) -> Vec<SuiteRun> {
    let benchmarks: Vec<Benchmark> = lp_suite::registry()
        .into_iter()
        .filter(|b| ids.contains(&b.suite))
        .collect();
    run_benchmarks(&benchmarks, scale)
}

/// Parses the scale from the first CLI argument (default: `default`).
///
/// # Panics
/// Exits the process with an error message on unknown values.
#[must_use]
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1).as_deref() {
        None | Some("default") => Scale::Default,
        Some("small") => Scale::Small,
        Some("test") => Scale::Test,
        Some(other) => {
            eprintln!("unknown scale {other:?} (use test|small|default)");
            std::process::exit(2);
        }
    }
}

/// Renders a log-scale ASCII bar for a speedup figure (the figures in the
/// paper use a logarithmic axis).
#[must_use]
pub fn log_bar(value: f64, max: f64, width: usize) -> String {
    let v = value.max(1.0).ln();
    let m = max.max(1.0 + 1e-9).ln();
    let filled = ((v / m) * width as f64).round() as usize;
    let mut bar = "#".repeat(filled.min(width));
    if bar.is_empty() && value > 1.0 {
        bar.push('#');
    }
    bar
}

/// Geometric-mean speedup of `runs` restricted to `suite` under one row.
#[must_use]
pub fn suite_geomean_speedup(
    runs: &[SuiteRun],
    suite: SuiteId,
    model: lp_runtime::ExecModel,
    config: lp_runtime::Config,
) -> f64 {
    let values: Vec<f64> = runs
        .iter()
        .filter(|r| r.suite == suite)
        .map(|r| r.study.evaluate(model, config).speedup)
        .collect();
    lp_runtime::geomean(&values)
}

/// Geometric-mean coverage of `runs` restricted to `suite` under one row.
#[must_use]
pub fn suite_geomean_coverage(
    runs: &[SuiteRun],
    suite: SuiteId,
    model: lp_runtime::ExecModel,
    config: lp_runtime::Config,
) -> f64 {
    let values: Vec<f64> = runs
        .iter()
        .filter(|r| r.suite == suite)
        .map(|r| r.study.evaluate(model, config).coverage.max(0.01))
        .collect();
    lp_runtime::geomean(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_bar_is_monotone() {
        let short = log_bar(2.0, 100.0, 40).len();
        let long = log_bar(50.0, 100.0, 40).len();
        assert!(long > short);
        assert!(log_bar(1.0, 100.0, 40).is_empty());
        assert_eq!(log_bar(100.0, 100.0, 40).len(), 40);
    }

    #[test]
    fn harness_runs_one_suite() {
        let runs = run_suites(&[SuiteId::Eembc], Scale::Test);
        assert_eq!(runs.len(), 10);
        let (model, config) = lp_runtime::best_pdoall();
        let gm = suite_geomean_speedup(&runs, SuiteId::Eembc, model, config);
        assert!(gm >= 1.0);
    }
}
