//! Criterion performance benches for the framework itself — the paper's
//! claim that compile-time filtering keeps run-time tracking overheads
//! low enough "to scale to large applications" (§III-A), measured on this
//! implementation:
//!
//! - raw interpretation throughput (no instrumentation sink),
//! - full profiling throughput (conflict tracking + predictors),
//! - evaluator cost per `(model, config)` row,
//! - predictor-bank throughput,
//! - conflict tracking with and without the cactus-stack filter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lp_analysis::analyze_module;
use lp_interp::{Engine, Exec, ExecUnit, MachineConfig};
use lp_predict::HybridPredictor;
use lp_runtime::{evaluate, profile_module_with, table2_rows, Profiler, ProfilerOptions};
use lp_suite::Scale;

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    for name in ["181.mcf", "171.swim", "eembc.matrix01"] {
        let module = lp_suite::find(name).unwrap().build(Scale::Test);
        let cost = {
            let unit = ExecUnit::new(&module);
            Exec::new(&unit).run(&[]).unwrap().result.cost
        };
        group.throughput(Throughput::Elements(cost));
        for engine in [Engine::Tree, Engine::Bc] {
            // Compile once outside the timed loop, as every real caller does.
            let unit = ExecUnit::with_engine(&module, engine);
            group.bench_with_input(BenchmarkId::new(engine.name(), name), &unit, |b, unit| {
                b.iter(|| Exec::new(unit).run(&[]).unwrap().result.cost);
            });
        }
    }
    group.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiler");
    for name in ["181.mcf", "171.swim"] {
        let module = lp_suite::find(name).unwrap().build(Scale::Test);
        let analysis = analyze_module(&module);
        let cost = {
            let unit = ExecUnit::new(&module);
            Exec::new(&unit).run(&[]).unwrap().result.cost
        };
        group.throughput(Throughput::Elements(cost));
        // Engine × filter: tree delivers per-instruction callbacks
        // (statically inlined), bc feeds the profiler's native
        // block-batch decoder — the two profiled hot paths.
        for engine in [Engine::Tree, Engine::Bc] {
            for cactus in [true, false] {
                let filter = if cactus { "cactus" } else { "flat-stack" };
                let label = format!("{}-{filter}", engine.name());
                group.bench_with_input(
                    BenchmarkId::new(label, name),
                    &(&module, &analysis),
                    |b, (m, a)| {
                        b.iter(|| {
                            profile_module_with(
                                m,
                                a,
                                &[],
                                MachineConfig {
                                    engine,
                                    ..MachineConfig::default()
                                },
                                ProfilerOptions {
                                    cactus_stack: cactus,
                                },
                            )
                            .unwrap()
                            .0
                            .total_cost
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_evaluator(c: &mut Criterion) {
    let module = lp_suite::find("456.hmmer").unwrap().build(Scale::Test);
    let analysis = analyze_module(&module);
    let (profile, _) = profile_module_with(
        &module,
        &analysis,
        &[],
        MachineConfig::default(),
        ProfilerOptions::default(),
    )
    .unwrap();
    let mut group = c.benchmark_group("evaluator");
    group.bench_function("all_14_table2_rows", |b| {
        b.iter(|| {
            table2_rows()
                .into_iter()
                .map(|(m, cfg)| evaluate(&profile, m, cfg).speedup)
                .sum::<f64>()
        });
    });
    group.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let stream: Vec<u64> = (0..8192u64)
        .scan(0u64, |x, i| {
            *x += if i % 64 == 0 { 17 } else { 3 };
            Some(*x)
        })
        .collect();
    let mut group = c.benchmark_group("predictors");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("hybrid_observe", |b| {
        b.iter(|| {
            let mut h = HybridPredictor::new();
            let mut hits = 0u64;
            for &v in &stream {
                hits += u64::from(h.observe(v));
            }
            hits
        });
    });
    group.finish();
}

/// The DESIGN.md overhead budget: `profile_module` (span + `MeteredSink`
/// + counter flush) vs an undecorated `Machine` + `Profiler` run.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("observability");
    for name in ["181.mcf", "eembc.matrix01"] {
        let module = lp_suite::find(name).unwrap().build(Scale::Test);
        let analysis = analyze_module(&module);
        group.bench_with_input(
            BenchmarkId::new("bare_profiler", name),
            &(&module, &analysis),
            |b, (m, a)| {
                b.iter(|| {
                    let mut profiler = Profiler::new(m, a);
                    let config = MachineConfig {
                        watched_values: profiler.watched_values(),
                        ..MachineConfig::default()
                    };
                    let unit = ExecUnit::new(m);
                    Exec::new(&unit)
                        .sink(&mut profiler)
                        .config(config)
                        .run(&[])
                        .unwrap();
                    profiler.finish().total_cost
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("metered_pipeline", name),
            &(&module, &analysis),
            |b, (m, a)| {
                b.iter(|| {
                    profile_module_with(
                        m,
                        a,
                        &[],
                        MachineConfig::default(),
                        ProfilerOptions::default(),
                    )
                    .unwrap()
                    .0
                    .total_cost
                });
            },
        );
    }
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let module = lp_suite::find("403.gcc").unwrap().build(Scale::Test);
    let mut group = c.benchmark_group("compile_time");
    group.bench_function("analyze_module", |b| {
        b.iter(|| analyze_module(&module).functions.len());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_profiler,
    bench_evaluator,
    bench_predictors,
    bench_obs_overhead,
    bench_analysis
);
criterion_main!(benches);
