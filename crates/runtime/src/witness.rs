//! Independence witnesses: machine-checkable evidence that a loop's
//! iterations touched pairwise-disjoint memory.
//!
//! Static DOALL certification (`lp_analysis::certify`) plus an
//! observed-dependence-free profile is still not enough to hand a loop
//! to real threads: the profiler tracks cross-iteration *RAW* flow only,
//! so a loop whose iterations silently overwrite each other (a WAW-only
//! conflict, e.g. every iteration also storing to slot 0) profiles
//! clean yet replays nondeterministically. The witness closes that gap
//! by recording, per target loop instance, every word each iteration
//! read or wrote and checking the footprints pairwise-disjoint *online*:
//!
//! - a **write** in iteration `k` conflicts with *any* earlier access to
//!   the same word from an iteration `j ≠ k` (covers WAW and WAR; the
//!   symmetric RAW case is caught when the later read arrives);
//! - a **read** in iteration `k` conflicts with an earlier *write* from
//!   `j ≠ k`;
//! - read–read sharing is allowed (loop-invariant inputs);
//! - words inside stack frames pushed during the current iteration are
//!   exempt (the cactus-stack rule of §II-E: iteration-local scratch);
//! - an explicit, normally empty, exempt set covers designated
//!   reduction slots.
//!
//! The check is exact over the *profiled* execution — the same
//! profile-once/evaluate-many bargain the limit study itself makes —
//! and every replayed run is additionally byte-compared against a
//! serial run, so a witness that slips through still cannot produce a
//! silently wrong result.

use crate::profile::Profile;
use crate::tracker::Profiler;
use lp_analysis::{LoopId, ModuleAnalysis};
use lp_interp::{Exec, ExecUnit, InterpError, MachineConfig, MeteredSink, RunResult, Value};
use lp_ir::fx::FxHashMap;
use lp_ir::{FuncId, Module};

/// Sentinel iteration meaning "no access recorded yet".
const NO_ITER: u32 = u32::MAX;

/// How two iterations collided on one word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// Two different iterations wrote the word.
    WriteWrite,
    /// One iteration wrote a word another iteration read (either order).
    ReadWrite,
}

impl ConflictKind {
    /// Short human-readable tag (used by reports and exports).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            ConflictKind::WriteWrite => "write-write",
            ConflictKind::ReadWrite => "read-write",
        }
    }
}

/// The first footprint-disjointness violation observed in one loop
/// instance — enough to name the offending word and iteration pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessViolation {
    /// The conflicting word's address.
    pub addr: u64,
    /// The earlier iteration involved (0-based).
    pub earlier_iter: u32,
    /// The later iteration (the one whose access exposed the conflict).
    pub later_iter: u32,
    /// Conflict flavour.
    pub kind: ConflictKind,
}

/// Per-instance independence evidence for one target loop.
#[derive(Debug, Clone)]
pub struct IndependenceWitness {
    /// Containing function.
    pub func: FuncId,
    /// Loop id within that function's forest.
    pub loop_id: LoopId,
    /// Completed iterations of this instance.
    pub iterations: u32,
    /// Distinct words the instance touched (exempt words excluded).
    pub distinct_words: u64,
    /// Total reads observed.
    pub reads: u64,
    /// Total writes observed.
    pub writes: u64,
    /// Accesses skipped by the cactus-stack (iteration-local frame) rule.
    pub cactus_exempt: u64,
    /// First disjointness violation, or `None` — the witness holds.
    pub violation: Option<WitnessViolation>,
}

impl IndependenceWitness {
    /// Whether this instance's iteration footprints were pairwise
    /// disjoint.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

/// All witnesses gathered over one profiled run.
#[derive(Debug, Clone, Default)]
pub struct WitnessReport {
    /// One entry per completed target loop instance, in completion order.
    pub witnesses: Vec<IndependenceWitness>,
}

impl WitnessReport {
    /// Whether `(func, loop_id)` is replay-safe: at least one instance
    /// was observed and every instance's witness holds.
    #[must_use]
    pub fn loop_holds(&self, func: FuncId, loop_id: LoopId) -> bool {
        let mut seen = false;
        for w in &self.witnesses {
            if w.func == func && w.loop_id == loop_id {
                if !w.holds() {
                    return false;
                }
                seen = true;
            }
        }
        seen
    }

    /// The first violating witness for `(func, loop_id)`, if any.
    #[must_use]
    pub fn first_violation(&self, func: FuncId, loop_id: LoopId) -> Option<&IndependenceWitness> {
        self.witnesses
            .iter()
            .find(|w| w.func == func && w.loop_id == loop_id && !w.holds())
    }
}

/// Per-word access record: the iteration that last wrote it, the
/// iteration that last read it, and whether reads came from more than
/// one iteration.
#[derive(Debug, Clone, Copy)]
struct AccessRec {
    writer: u32,
    reader: u32,
    multi_reader: bool,
}

/// One actively-tracked target loop instance.
#[derive(Debug)]
pub(crate) struct ActiveWitness {
    /// Position of the instance on the profiler's loop stack.
    depth: usize,
    func: u32,
    loop_id: u32,
    accesses: FxHashMap<u64, AccessRec>,
    reads: u64,
    writes: u64,
    cactus_exempt: u64,
    violation: Option<WitnessViolation>,
}

impl ActiveWitness {
    /// The instance's loop-stack position.
    pub(crate) fn depth(&self) -> usize {
        self.depth
    }

    /// Counts one cactus-exempt (iteration-local frame) access.
    pub(crate) fn note_exempt(&mut self) {
        self.cactus_exempt += 1;
    }

    /// Feeds one access from iteration `iter` through the disjointness
    /// check.
    pub(crate) fn observe(&mut self, addr: u64, iter: u32, is_store: bool) {
        if is_store {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        if self.violation.is_some() {
            return; // first violation already pinned; stay cheap
        }
        let rec = self.accesses.entry(addr).or_insert(AccessRec {
            writer: NO_ITER,
            reader: NO_ITER,
            multi_reader: false,
        });
        if is_store {
            if rec.writer != NO_ITER && rec.writer != iter {
                self.violation = Some(WitnessViolation {
                    addr,
                    earlier_iter: rec.writer,
                    later_iter: iter,
                    kind: ConflictKind::WriteWrite,
                });
                return;
            }
            if rec.reader != NO_ITER && (rec.multi_reader || rec.reader != iter) {
                // Some reader iteration differs from the writer.
                let earlier = if rec.reader == iter { 0 } else { rec.reader };
                self.violation = Some(WitnessViolation {
                    addr,
                    earlier_iter: earlier,
                    later_iter: iter,
                    kind: ConflictKind::ReadWrite,
                });
                return;
            }
            rec.writer = iter;
        } else {
            if rec.writer != NO_ITER && rec.writer != iter {
                self.violation = Some(WitnessViolation {
                    addr,
                    earlier_iter: rec.writer,
                    later_iter: iter,
                    kind: ConflictKind::ReadWrite,
                });
                return;
            }
            if rec.reader == NO_ITER {
                rec.reader = iter;
            } else if rec.reader != iter {
                rec.multi_reader = true;
                rec.reader = iter;
            }
        }
    }
}

/// The witness engine the profiler drives: which loops to watch, the
/// currently-active instances, and the finished evidence.
#[derive(Debug, Default)]
pub(crate) struct WitnessState {
    /// Target loops, sorted for binary search.
    targets: Vec<(u32, u32)>,
    /// Sorted exempt word addresses ("reduction slots"; normally empty).
    exempt: Vec<u64>,
    /// Active instances, innermost last (stack discipline mirrors the
    /// profiler's loop stack).
    active: Vec<ActiveWitness>,
    done: Vec<IndependenceWitness>,
}

impl WitnessState {
    pub(crate) fn new(targets: &[(FuncId, LoopId)], mut exempt: Vec<u64>) -> WitnessState {
        let mut targets: Vec<(u32, u32)> = targets.iter().map(|&(f, l)| (f.0, l.0)).collect();
        targets.sort_unstable();
        targets.dedup();
        exempt.sort_unstable();
        exempt.dedup();
        WitnessState {
            targets,
            exempt,
            active: Vec::new(),
            done: Vec::new(),
        }
    }

    pub(crate) fn is_target(&self, func: u32, loop_id: u32) -> bool {
        self.targets.binary_search(&(func, loop_id)).is_ok()
    }

    pub(crate) fn is_exempt(&self, addr: u64) -> bool {
        self.exempt.binary_search(&addr).is_ok()
    }

    /// Whether any instance is currently being tracked (fast-path gate).
    pub(crate) fn any_active(&self) -> bool {
        !self.active.is_empty()
    }

    /// Starts tracking the instance just pushed at `depth`.
    pub(crate) fn activate(&mut self, depth: usize, func: u32, loop_id: u32) {
        self.active.push(ActiveWitness {
            depth,
            func,
            loop_id,
            accesses: FxHashMap::default(),
            reads: 0,
            writes: 0,
            cactus_exempt: 0,
            violation: None,
        });
    }

    /// Mutable view of the active instances (the profiler pairs each
    /// with its loop-stack level when feeding accesses).
    pub(crate) fn active_mut(&mut self) -> &mut [ActiveWitness] {
        &mut self.active
    }

    /// Finishes the instance at loop-stack position `depth` (the one the
    /// profiler just popped), if it was tracked.
    pub(crate) fn deactivate(&mut self, depth: usize, iterations: u32) {
        if self.active.last().is_none_or(|aw| aw.depth != depth) {
            return;
        }
        let aw = self.active.pop().expect("checked above");
        self.done.push(IndependenceWitness {
            func: FuncId(aw.func),
            loop_id: LoopId(aw.loop_id),
            iterations,
            distinct_words: aw.accesses.len() as u64,
            reads: aw.reads,
            writes: aw.writes,
            cactus_exempt: aw.cactus_exempt,
            violation: aw.violation,
        });
    }

    pub(crate) fn into_report(self) -> WitnessReport {
        debug_assert!(self.active.is_empty(), "witness instances left open");
        WitnessReport {
            witnesses: self.done,
        }
    }
}

/// Profiles `module` while gathering independence witnesses for
/// `targets`, returning the profile, the run result, and the evidence.
///
/// # Errors
/// Propagates interpreter traps.
pub fn profile_module_witnessed(
    module: &Module,
    analysis: &ModuleAnalysis,
    args: &[Value],
    mut machine_config: MachineConfig,
    targets: &[(FuncId, LoopId)],
) -> Result<(Profile, RunResult, WitnessReport), InterpError> {
    let mut profiler = Profiler::new(module, analysis);
    profiler.enable_witness(targets, Vec::new());
    machine_config.watched_values = profiler.watched_values();
    let mut metered = MeteredSink::new(&mut profiler);
    let unit = ExecUnit::with_engine(module, machine_config.engine);
    let result = Exec::new(&unit)
        .sink(&mut metered)
        .config(machine_config)
        .run(args)?
        .result;
    let (profile, report) = profiler.finish_with_witness();
    Ok((profile, result, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_analysis::analyze_module;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{BlockId, Global, IcmpPred, Type};

    /// `for i in 0..n { a[i] = i; extra(i) }` — `extra` injects the
    /// hazard under test.
    fn kernel(extra: impl FnOnce(&mut FunctionBuilder, lp_ir::ValueId, lp_ir::ValueId)) -> Module {
        let mut m = Module::new("w");
        let g = m.add_global(Global::zeroed("a", 64));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(32);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let base = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let addr = fb.gep(base, i, 8, 0);
        fb.store(i, addr);
        extra(&mut fb, base, i);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(zero));
        m.add_function(fb.finish().unwrap());
        m
    }

    fn witness(m: &Module) -> (Profile, WitnessReport) {
        let analysis = analyze_module(m);
        let targets = vec![(lp_ir::FuncId(0), LoopId(0))];
        let (p, _, r) =
            profile_module_witnessed(m, &analysis, &[], MachineConfig::default(), &targets)
                .unwrap();
        (p, r)
    }

    #[test]
    fn disjoint_stores_produce_a_holding_witness() {
        let m = kernel(|_, _, _| {});
        let (_, report) = witness(&m);
        assert_eq!(report.witnesses.len(), 1);
        let w = &report.witnesses[0];
        assert!(w.holds());
        assert_eq!(w.iterations, 32);
        assert_eq!(w.distinct_words, 32);
        assert_eq!(w.writes, 32);
        assert!(report.loop_holds(lp_ir::FuncId(0), LoopId(0)));
    }

    #[test]
    fn waw_only_conflict_is_caught_despite_clean_raw_profile() {
        // Every iteration also stores to a[0]: no load ever observes the
        // cross-iteration flow, so the RAW profiler sees nothing — but
        // the footprints overlap and replay would be nondeterministic.
        let m = kernel(|fb, base, i| {
            fb.store(i, base);
        });
        let (profile, report) = witness(&m);
        let (_, _, inst) = profile.loop_instances().next().unwrap();
        assert!(
            inst.mem_conflict_iters.is_empty(),
            "RAW profiling must stay blind to the WAW hazard"
        );
        assert!(!report.loop_holds(lp_ir::FuncId(0), LoopId(0)));
        let v = report
            .first_violation(lp_ir::FuncId(0), LoopId(0))
            .unwrap()
            .violation
            .unwrap();
        assert_eq!(v.kind, ConflictKind::WriteWrite);
        assert_eq!((v.earlier_iter, v.later_iter), (0, 1));
        assert_eq!(v.addr, lp_interp::GLOBAL_BASE);
    }

    #[test]
    fn cross_iteration_read_write_is_caught() {
        // Iteration i reads a[i] *then* writes it — self-overlap is fine —
        // but also reads a[0], which iteration 0 wrote.
        let m = kernel(|fb, base, _| {
            fb.load(Type::I64, base);
        });
        let (_, report) = witness(&m);
        let v = report
            .first_violation(lp_ir::FuncId(0), LoopId(0))
            .unwrap()
            .violation
            .unwrap();
        assert_eq!(v.kind, ConflictKind::ReadWrite);
        assert_eq!(v.addr, lp_interp::GLOBAL_BASE);
    }

    #[test]
    fn shared_reads_do_not_violate() {
        // Every iteration reads the same loop-invariant cell (a[63],
        // never written inside the loop): read–read sharing is allowed.
        let m = kernel(|fb, base, _| {
            let k = fb.const_i64(63);
            let addr = fb.gep(base, k, 8, 0);
            fb.load(Type::I64, addr);
        });
        let (_, report) = witness(&m);
        assert!(report.loop_holds(lp_ir::FuncId(0), LoopId(0)));
        assert_eq!(report.witnesses[0].reads, 32);
    }

    #[test]
    fn untargeted_loops_are_ignored() {
        let m = kernel(|fb, base, i| {
            fb.store(i, base); // would violate, but nobody is watching
        });
        let analysis = analyze_module(&m);
        let (_, _, report) =
            profile_module_witnessed(&m, &analysis, &[], MachineConfig::default(), &[]).unwrap();
        assert!(report.witnesses.is_empty());
        assert!(!report.loop_holds(lp_ir::FuncId(0), LoopId(0)));
    }
}
