//! The limit-study evaluator.
//!
//! Consumes a [`Profile`] and computes, for one `(execution model,
//! configuration)` pair, the achievable speedup in the limit. The dynamic
//! region tree is folded bottom-up:
//!
//! - each region's **best cost** is its serial cost minus the savings of
//!   its children (nested, SWARM/T4-style multi-level parallelism: inner
//!   loop savings shrink the enclosing iteration lengths before the outer
//!   loop's model is applied — the paper's "propagated up to the nest of
//!   parent loops and functions");
//! - a loop instance then applies the execution-model cost over its
//!   adjusted iteration lengths and keeps `min(serial, parallel)`;
//! - loops whose modelled parallel cost does not beat serial are "marked
//!   serial", exactly as §III-B prescribes.
//!
//! Coverage is the fraction of dynamic IR instructions executing inside
//! loops judged parallel (Fig. 5); Amdahl makes it the other half of the
//! speedup story.

use crate::config::{Config, DepMode, ExecModel, FnMode, ReducMode};
use crate::explain::{AttrCollector, Attribution, LimiterKind};
use crate::model::{doall_cost_bounded, helix_cost_bounded, pdoall_cost_bounded};
use crate::profile::{CallClass, LoopInstance, LoopMeta, Profile, Region, RegionId, RegionKind};
use lp_analysis::LcdClass;
use lp_ir::BlockId;

/// Per-static-loop aggregation across all its dynamic instances.
#[derive(Debug, Clone, Default)]
pub struct LoopSummary {
    /// Function containing the loop.
    pub func_name: String,
    /// Header block.
    pub header: BlockId,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
    /// Dynamic instances executed.
    pub instances: u64,
    /// Instances the model parallelized.
    pub parallel_instances: u64,
    /// Total iterations across instances.
    pub iterations: u64,
    /// Total raw serial cost across instances.
    pub serial_cost: u64,
    /// Total best (possibly parallel) cost across instances.
    pub best_cost: u64,
}

impl LoopSummary {
    /// Per-loop speedup across all instances.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.best_cost == 0 {
            1.0
        } else {
            self.serial_cost as f64 / self.best_cost as f64
        }
    }
}

/// The result of evaluating one `(model, config)` pair on one profile.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Program (module) name.
    pub program: String,
    /// Execution model evaluated.
    pub model: ExecModel,
    /// Configuration evaluated.
    pub config: Config,
    /// Sequential cost of the whole program.
    pub total_cost: u64,
    /// Best achievable cost under the model/config.
    pub best_cost: u64,
    /// `total_cost / best_cost`.
    pub speedup: f64,
    /// Percent of dynamic IR instructions inside parallel loops.
    pub coverage: f64,
    /// Per-static-loop details (only loops that executed).
    pub loops: Vec<LoopSummary>,
}

struct RegionEval {
    serial: u64,
    best: u64,
    covered: u64,
}

/// Which limiter causes to *remove* when re-costing a loop instance.
///
/// `Lift::NONE` reproduces the normal evaluation bit-for-bit; the
/// attribution layer re-costs with a single cause lifted to compute its
/// counterfactual savings, and with [`Lift::ALL`] to compute the ideal
/// (limiter-free) cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Lift {
    /// Ignore the `fn` flag gate (treat the loop as making no calls).
    fn_gate: bool,
    /// Drop all cross-iteration memory RAW evidence.
    mem: bool,
    /// Drop non-computable (non-reduction) register LCDs.
    reg_lcd: bool,
    /// Decouple reduction LCDs as if `reduc1` were set.
    reduction: bool,
    /// Treat every value prediction as a hit (as if `dep3`).
    value_pred: bool,
}

impl Lift {
    const NONE: Lift = Lift {
        fn_gate: false,
        mem: false,
        reg_lcd: false,
        reduction: false,
        value_pred: false,
    };
    const ALL: Lift = Lift {
        fn_gate: true,
        mem: true,
        reg_lcd: true,
        reduction: true,
        value_pred: true,
    };

    /// The single-cause lift used for a limiter's counterfactual.
    fn for_kind(kind: LimiterKind) -> Lift {
        let mut l = Lift::NONE;
        match kind {
            LimiterKind::MemoryRaw => l.mem = true,
            LimiterKind::RegisterLcd => l.reg_lcd = true,
            LimiterKind::Reduction => l.reduction = true,
            LimiterKind::ValuePrediction => l.value_pred = true,
            LimiterKind::CallGate(_) => l.fn_gate = true,
            LimiterKind::LoadImbalance => {}
        }
        l
    }
}

/// Which causes manifested while costing a loop instance (explain mode
/// only).
#[derive(Debug, Clone, Copy, Default)]
struct Causes {
    call_gate: bool,
    mem: bool,
    reg_lcd: bool,
    reduction: bool,
    value_pred: bool,
}

impl Causes {
    /// The manifested causes as limiter kinds, in taxonomy order.
    fn kinds(&self, call_class: CallClass) -> Vec<LimiterKind> {
        let mut out = Vec::new();
        if self.mem {
            out.push(LimiterKind::MemoryRaw);
        }
        if self.reg_lcd {
            out.push(LimiterKind::RegisterLcd);
        }
        if self.reduction {
            out.push(LimiterKind::Reduction);
        }
        if self.value_pred {
            out.push(LimiterKind::ValuePrediction);
        }
        if self.call_gate {
            out.push(LimiterKind::CallGate(call_class));
        }
        out
    }
}

struct Evaluator<'p> {
    profile: &'p Profile,
    model: ExecModel,
    config: Config,
    options: EvalOptions,
    loop_agg: Vec<LoopSummary>,
    /// Present only in explain mode; `None` keeps the normal path free of
    /// any attribution work.
    attr: Option<AttrCollector>,
}

/// Evaluator behaviour knobs (ablations).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOptions {
    /// Model classic DOACROSS instead of HELIX: a *single* synchronization
    /// point per iteration pair, placed "after the last write in the
    /// previous iteration and immediately before the first read in the
    /// next" (paper §II-C). The per-iteration skew becomes
    /// `max(producers) − min(consumers)` across ALL manifesting LCDs,
    /// whereas HELIX synchronizes each LCD independently and takes the
    /// largest individual skew.
    pub doacross_single_sync: bool,
    /// Bound the number of cores (`None` = the paper's infinite-resource
    /// limit study). Parallel regions are scheduled in in-order waves;
    /// HELIX additionally respects core-reuse: iteration `i` waits for
    /// iteration `i − cores` to finish.
    pub cores: Option<u32>,
}

/// Evaluates `profile` under one `(model, config)` pair.
#[must_use]
pub fn evaluate(profile: &Profile, model: ExecModel, config: Config) -> EvalReport {
    evaluate_with(profile, model, config, EvalOptions::default())
}

/// As [`evaluate`] with explicit evaluator knobs.
#[must_use]
pub fn evaluate_with(
    profile: &Profile,
    model: ExecModel,
    config: Config,
    options: EvalOptions,
) -> EvalReport {
    run(profile, model, config, options, false).0
}

/// As [`evaluate`], additionally attributing every loop's speedup gap to
/// ranked [`LimiterKind`]s with counterfactual savings (see
/// [`crate::explain`]).
#[must_use]
pub fn evaluate_explained(
    profile: &Profile,
    model: ExecModel,
    config: Config,
) -> (EvalReport, Attribution) {
    evaluate_explained_with(profile, model, config, EvalOptions::default())
}

/// As [`evaluate_explained`] with explicit evaluator knobs.
///
/// # Panics
/// Never panics; the collector is always present in explain mode.
#[must_use]
pub fn evaluate_explained_with(
    profile: &Profile,
    model: ExecModel,
    config: Config,
    options: EvalOptions,
) -> (EvalReport, Attribution) {
    let (report, attr) = run(profile, model, config, options, true);
    (report, attr.expect("explain mode always collects"))
}

fn run(
    profile: &Profile,
    model: ExecModel,
    config: Config,
    options: EvalOptions,
    explain: bool,
) -> (EvalReport, Option<Attribution>) {
    let _span = lp_obs::span!("evaluate");
    let reg = lp_obs::registry();
    let t0 = reg.now_ns();
    let mut ev = Evaluator {
        profile,
        model,
        config,
        options,
        loop_agg: profile
            .loop_meta
            .iter()
            .map(|m| LoopSummary {
                func_name: m.func_name.clone(),
                header: m.header,
                depth: m.depth,
                ..LoopSummary::default()
            })
            .collect(),
        attr: explain.then(|| AttrCollector::new(profile.loop_meta.len(), profile.regions.len())),
    };
    let root = ev.eval_region(profile.root());
    let total = profile.total_cost.max(1);
    let best = root.best.max(1);
    lp_obs::counters().add(lp_obs::Counter::EvalsPerformed, 1);
    reg.record_hist(lp_obs::Hist::EvalNanos, reg.now_ns().saturating_sub(t0));
    let attribution = ev.attr.take().map(|c| {
        c.finish(
            &profile.program,
            model,
            config,
            profile.total_cost,
            root.best,
            &profile.loop_meta,
        )
    });
    let report = EvalReport {
        program: profile.program.clone(),
        model,
        config,
        total_cost: profile.total_cost,
        best_cost: root.best,
        speedup: total as f64 / best as f64,
        coverage: 100.0 * root.covered as f64 / total as f64,
        loops: ev
            .loop_agg
            .into_iter()
            .filter(|l| l.instances > 0)
            .collect(),
    };
    (report, attribution)
}

impl Evaluator<'_> {
    fn eval_region(&mut self, rid: RegionId) -> RegionEval {
        let region = self.profile.region(rid);
        match &region.kind {
            RegionKind::Call { .. } => {
                let mut saving = 0u64;
                let mut covered = 0u64;
                for &c in &region.children {
                    let ce = self.eval_region(c);
                    saving += ce.serial - ce.best;
                    covered += ce.covered;
                }
                let serial = region.serial_cost();
                RegionEval {
                    serial,
                    best: serial.saturating_sub(saving),
                    covered,
                }
            }
            RegionKind::Loop(inst) => self.eval_loop(rid, region, inst),
        }
    }

    fn eval_loop(&mut self, rid: RegionId, region: &Region, inst: &LoopInstance) -> RegionEval {
        let meta = &self.profile.loop_meta[inst.meta];
        let n = inst.iterations();
        let raw_lens = self.profile.iter_lengths(region, inst);

        // Fold children: inner savings shrink the iteration that contained
        // them (multi-level nested parallelism).
        let mut save = vec![0u64; n.max(1)];
        let mut child_covered = 0u64;
        for &c in &region.children.clone() {
            let ce = self.eval_region(c);
            let k = (self.profile.region(c).parent_iter as usize).min(n.saturating_sub(1));
            save[k] += ce.serial - ce.best;
            child_covered += ce.covered;
        }
        let adj: Vec<u64> = raw_lens
            .iter()
            .zip(&save)
            .map(|(&len, &s)| len.saturating_sub(s))
            .collect();
        let serial_adj: u64 = adj.iter().sum();

        let mut causes = Causes::default();
        let collect = self.attr.is_some();
        let parallel_cost =
            self.loop_cost(meta, inst, &adj, Lift::NONE, collect.then_some(&mut causes));

        let serial_raw = region.serial_cost();
        let (best, covered, parallel) = match parallel_cost {
            Some(p) if p < serial_adj => (p, serial_raw, true),
            _ => (serial_adj, child_covered, false),
        };

        if collect {
            // Ideal: the same model with every liftable limiter removed —
            // pure wave/pipeline scheduling of the adjusted lengths. Each
            // manifested cause is then re-costed with that cause alone
            // lifted; the savings feed the conserved gap allocation.
            let ideal = self
                .loop_cost(meta, inst, &adj, Lift::ALL, None)
                .map_or(serial_adj, |c| c.min(serial_adj));
            let gap = best.saturating_sub(ideal);
            let mut contribs: Vec<(LimiterKind, u64)> = Vec::new();
            if gap > 0 {
                for kind in causes.kinds(inst.call_class) {
                    let cf = self.loop_cost(meta, inst, &adj, Lift::for_kind(kind), None);
                    let cf_best = match cf {
                        Some(p) if p < serial_adj => p,
                        _ => serial_adj,
                    };
                    contribs.push((kind, best.saturating_sub(cf_best)));
                }
            }
            let attr = self.attr.as_mut().expect("collect implies a collector");
            attr.record_instance(
                inst.meta,
                rid.index(),
                serial_raw,
                serial_adj,
                best,
                ideal,
                parallel,
                &contribs,
            );
        }

        let agg = &mut self.loop_agg[inst.meta];
        agg.instances += 1;
        agg.parallel_instances += u64::from(parallel);
        agg.iterations += n as u64;
        agg.serial_cost += serial_raw;
        agg.best_cost += best;

        RegionEval {
            serial: serial_raw,
            best,
            covered,
        }
    }

    /// Models the parallel cost of one loop instance over its adjusted
    /// iteration lengths, with the causes named in `lift` removed.
    /// [`Lift::NONE`] reproduces the normal evaluation bit-for-bit;
    /// `causes` (explain mode, passed only on the un-lifted run) records
    /// which limiter causes manifested.
    fn loop_cost(
        &self,
        meta: &LoopMeta,
        inst: &LoopInstance,
        adj: &[u64],
        lift: Lift,
        mut causes: Option<&mut Causes>,
    ) -> Option<u64> {
        // fn-flag gate.
        let gated = match self.config.fnm {
            FnMode::Fn0 => inst.call_class > CallClass::NoCalls,
            FnMode::Fn1 => inst.call_class > CallClass::PureCalls,
            FnMode::Fn2 => inst.call_class > CallClass::InstrumentedCalls,
            FnMode::Fn3 => false,
        };
        let mut forced = gated && !lift.fn_gate;
        let single_sync = self.options.doacross_single_sync;
        let mem = !lift.mem && inst.mem_edges > 0;
        if let Some(c) = causes.as_deref_mut() {
            c.call_gate = gated;
            c.mem = match self.model {
                ExecModel::Doall | ExecModel::PartialDoall => !inst.mem_conflict_iters.is_empty(),
                ExecModel::Helix => inst.mem_max_skew > 0 || (single_sync && inst.mem_edges > 0),
            };
        }

        // Register-LCD handling. Under the DOACROSS ablation the loop
        // gets one sync point: track the producer/consumer extremes
        // across all LCD sources instead of per-LCD skews. A register
        // LCD is produced at offset `max_def_rel` and consumed at the
        // next iteration's start (offset 0).
        let mut delta = if lift.mem { 0 } else { inst.mem_max_skew };
        let mut max_producer = if mem { inst.mem_max_producer_rel } else { 0 };
        let mut reg_lcd_synced = false;
        let mut extra_conflicts: Vec<u32> = Vec::new();
        for (idx, (_, class)) in meta.traced_phis.iter().enumerate() {
            let is_reduction = matches!(class, LcdClass::Reduction(_));
            if is_reduction && self.config.reduc == ReducMode::Reduc1 {
                continue; // decoupled by reduction hardware
            }
            if is_reduction && lift.reduction {
                continue; // counterfactual: reduction hardware enabled
            }
            if !is_reduction && lift.reg_lcd {
                continue; // counterfactual: the register LCD vanishes
            }
            // A reduction phi blames its reduction-ness; otherwise a
            // dep2 residual is a prediction problem, and a hard
            // serialization or sync under dep0/dep1 is the LCD itself.
            let blame = |causes: &mut Option<&mut Causes>, predicted: bool| {
                if let Some(c) = causes.as_deref_mut() {
                    if is_reduction {
                        c.reduction = true;
                    } else if predicted {
                        c.value_pred = true;
                    } else {
                        c.reg_lcd = true;
                    }
                }
            };
            let predicted_perfect = lift.value_pred && !is_reduction;
            let lcd = &inst.lcds[idx];
            match (self.model, self.config.dep) {
                // DOALL supports no non-computable register LCDs at all
                // (dep1..dep3 are incompatible with DOALL, §IV).
                (ExecModel::Doall, _) => {
                    forced = true;
                    blame(&mut causes, false);
                }
                // Perfect value prediction removes the LCD entirely.
                (_, DepMode::Dep3) => {}
                (ExecModel::PartialDoall, DepMode::Dep0 | DepMode::Dep1) => {
                    forced = true;
                    blame(&mut causes, false);
                }
                (ExecModel::PartialDoall, DepMode::Dep2) => {
                    if !lcd.mispredict_iters.is_empty() {
                        blame(&mut causes, true);
                        if !predicted_perfect {
                            extra_conflicts.extend_from_slice(&lcd.mispredict_iters);
                        }
                    }
                }
                (ExecModel::Helix, DepMode::Dep0) => {
                    forced = true;
                    blame(&mut causes, false);
                }
                (ExecModel::Helix, DepMode::Dep1) => {
                    delta = delta.max(lcd.max_def_rel);
                    max_producer = max_producer.max(lcd.max_def_rel);
                    reg_lcd_synced = true;
                    blame(&mut causes, false);
                }
                (ExecModel::Helix, DepMode::Dep2) => {
                    // Predicted iterations run free; any mispredicts fall
                    // back to synchronization on this LCD.
                    if !lcd.mispredict_iters.is_empty() {
                        blame(&mut causes, true);
                        if !predicted_perfect {
                            delta = delta.max(lcd.max_def_rel);
                            max_producer = max_producer.max(lcd.max_def_rel);
                            reg_lcd_synced = true;
                        }
                    }
                }
            }
        }

        if single_sync && (mem || reg_lcd_synced) {
            // Register-LCD consumers sit at iteration start (offset 0);
            // memory consumers at their recorded earliest offset.
            let min_consumer = if reg_lcd_synced {
                0
            } else {
                inst.mem_min_consumer_rel
            };
            delta = delta.max(max_producer.saturating_sub(min_consumer));
        }
        let cores = self.options.cores;
        match self.model {
            ExecModel::Doall => {
                let has_conflicts = !lift.mem && !inst.mem_conflict_iters.is_empty();
                doall_cost_bounded(adj, has_conflicts, forced, cores)
            }
            ExecModel::PartialDoall => {
                let mut conflicts = if lift.mem {
                    Vec::new()
                } else {
                    inst.mem_conflict_iters.clone()
                };
                conflicts.extend_from_slice(&extra_conflicts);
                conflicts.sort_unstable();
                conflicts.dedup();
                pdoall_cost_bounded(adj, &conflicts, forced, cores)
            }
            ExecModel::Helix => helix_cost_bounded(adj, delta, forced, cores),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, DepMode, ExecModel, FnMode, ReducMode};
    use crate::tracker::profile_module;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Global, IcmpPred, Module, Type};

    fn cfg(reduc: ReducMode, dep: DepMode, fnm: FnMode) -> Config {
        Config::new(reduc, dep, fnm)
    }

    fn profile_of(m: &Module) -> Profile {
        let analysis = analyze_module(m);
        let (p, _) = profile_module(m, &analysis, &[], MachineConfig::default()).unwrap();
        p
    }

    /// DOALL-able loop: disjoint stores, computable IV only.
    fn doall_program(n: i64) -> Module {
        let mut m = Module::new("doall");
        let g = m.add_global(Global::zeroed("a", n as u64 + 1));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let nn = fb.const_i64(n);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let base = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let addr = fb.gep(base, i, 8, 0);
        let v = fb.mul(i, i);
        let v2 = fb.add(v, one);
        let v3 = fb.mul(v2, v2);
        fb.store(v3, addr);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(zero));
        m.add_function(fb.finish().unwrap());
        m
    }

    /// Serial pointer-chase-like loop: a non-computable register LCD whose
    /// producer sits early in the iteration, plus filler work after it.
    fn register_lcd_program(n: i64) -> Module {
        let mut m = Module::new("reglcd");
        let g = m.add_global(Global::zeroed("a", 4096));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let nn = fb.const_i64(n);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let mask = fb.const_i64(1023);
        let base = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let x = fb.phi(Type::I64); // non-computable: x' = (x*1103515245+12345) & mask
        let c = fb.icmp(IcmpPred::Slt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let mul = fb.const_i64(1103515245);
        let inc = fb.const_i64(12345);
        let t1 = fb.mul(x, mul);
        let t2 = fb.add(t1, inc);
        let x2 = fb.and(t2, mask); // producer: early in the iteration
                                   // Filler work AFTER the producer (uses x2 address, iteration-local
                                   // stores to disjoint slots).
        let addr = fb.gep(base, i, 8, 0);
        let mut acc = x2;
        for _ in 0..10 {
            acc = fb.mul(acc, mul);
            acc = fb.add(acc, inc);
        }
        fb.store(acc, addr);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(x, lp_ir::BlockId::ENTRY, one);
        fb.add_phi_incoming(x, body, x2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(x));
        m.add_function(fb.finish().unwrap());
        m
    }

    #[test]
    fn doall_program_parallelizes_under_minimum_config() {
        let p = profile_of(&doall_program(200));
        let r = evaluate(
            &p,
            ExecModel::Doall,
            cfg(ReducMode::Reduc0, DepMode::Dep0, FnMode::Fn0),
        );
        assert!(
            r.speedup > 20.0,
            "DOALL loop should approach num_iter speedup, got {}",
            r.speedup
        );
        assert!(r.coverage > 80.0, "coverage {}", r.coverage);
        assert_eq!(r.loops.len(), 1);
        assert_eq!(r.loops[0].parallel_instances, 1);
    }

    #[test]
    fn register_lcd_serializes_doall_but_not_helix_dep1() {
        let p = profile_of(&register_lcd_program(200));
        let doall = evaluate(
            &p,
            ExecModel::Doall,
            cfg(ReducMode::Reduc0, DepMode::Dep0, FnMode::Fn0),
        );
        assert!(
            doall.speedup < 1.01,
            "DOALL must serialize: {}",
            doall.speedup
        );
        let helix0 = evaluate(
            &p,
            ExecModel::Helix,
            cfg(ReducMode::Reduc0, DepMode::Dep0, FnMode::Fn2),
        );
        assert!(
            helix0.speedup < 1.01,
            "HELIX dep0 must serialize: {}",
            helix0.speedup
        );
        let helix1 = evaluate(
            &p,
            ExecModel::Helix,
            cfg(ReducMode::Reduc0, DepMode::Dep1, FnMode::Fn2),
        );
        assert!(
            helix1.speedup > 1.5,
            "HELIX dep1 should overlap the post-producer work: {}",
            helix1.speedup
        );
        // dep3 (perfect prediction) under PDOALL removes the LCD entirely.
        let pd3 = evaluate(
            &p,
            ExecModel::PartialDoall,
            cfg(ReducMode::Reduc0, DepMode::Dep3, FnMode::Fn2),
        );
        assert!(pd3.speedup > helix1.speedup);
    }

    #[test]
    fn monotonicity_across_dep_relaxations_pdoall() {
        let p = profile_of(&register_lcd_program(100));
        let s = |dep| {
            evaluate(
                &p,
                ExecModel::PartialDoall,
                cfg(ReducMode::Reduc0, dep, FnMode::Fn2),
            )
            .speedup
        };
        let s0 = s(DepMode::Dep0);
        let s2 = s(DepMode::Dep2);
        let s3 = s(DepMode::Dep3);
        assert!(s0 <= s2 + 1e-9, "dep0 {s0} <= dep2 {s2}");
        assert!(s2 <= s3 + 1e-9, "dep2 {s2} <= dep3 {s3}");
    }

    #[test]
    fn explained_report_matches_plain_and_conserves_gap() {
        let p = profile_of(&register_lcd_program(120));
        for model in ExecModel::all() {
            for config in Config::all() {
                let plain = evaluate(&p, model, config);
                let (report, attr) = evaluate_explained(&p, model, config);
                assert_eq!(
                    format!("{plain:?}"),
                    format!("{report:?}"),
                    "{model} {config}: explain mode changed the report"
                );
                for l in &attr.loops {
                    assert!(l.ideal_cost <= l.best_cost, "{model} {config}");
                    assert!(l.best_cost <= l.serial_adj, "{model} {config}");
                    assert_eq!(l.gap, l.best_cost - l.ideal_cost);
                    let weight_sum: u64 = l.limiters.iter().map(|x| x.weight).sum();
                    assert_eq!(
                        weight_sum,
                        l.gap,
                        "{model} {config} {}: weights must conserve the gap",
                        l.location()
                    );
                }
            }
        }
    }

    #[test]
    fn serial_register_lcd_loop_names_its_limiter() {
        let p = profile_of(&register_lcd_program(120));
        let (_, attr) = evaluate_explained(
            &p,
            ExecModel::Doall,
            cfg(ReducMode::Reduc0, DepMode::Dep0, FnMode::Fn0),
        );
        let l = attr
            .loops
            .iter()
            .find(|l| l.gap > 0)
            .expect("serialized loop has a gap");
        assert_eq!(l.verdict(), "serial");
        let lim = &l.limiters[0];
        assert_eq!(lim.kind, LimiterKind::RegisterLcd);
        assert!(lim.weight > 0 && lim.savings > 0);
        // Program rollup sees the same dominant limiter.
        assert_eq!(attr.limiters[0].kind, LimiterKind::RegisterLcd);
        // The counterfactual is realized: HELIX dep1 lifts the sync.
        assert!(lim.unlock_factor(l.best_cost) > 1.0);
    }

    #[test]
    fn parallel_doall_loop_has_no_gap() {
        let p = profile_of(&doall_program(100));
        let (_, attr) = evaluate_explained(
            &p,
            ExecModel::Doall,
            cfg(ReducMode::Reduc0, DepMode::Dep0, FnMode::Fn0),
        );
        let l = &attr.loops[0];
        assert_eq!(l.verdict(), "parallel");
        assert_eq!(l.gap, 0, "conflict-free DOALL is already ideal");
        assert!(l.limiters.is_empty());
        // Region verdicts mark the loop region parallel.
        assert!(attr.region_parallel.iter().any(|&b| b));
    }

    #[test]
    fn fn_gate_is_attributed_to_calls() {
        // The metered-fidelity sample shape: a loop calling a callee, so
        // fn0 gates it. Reuse register_lcd_program? It makes no calls —
        // build a tiny caller loop instead.
        use lp_ir::Global;
        let mut m = Module::new("callgate");
        let g = m.add_global(Global::zeroed("a", 256));
        let mut fb = FunctionBuilder::new("leaf", &[Type::I64], Type::I64);
        let a = fb.param(0);
        let one = fb.const_i64(1);
        let r = fb.add(a, one);
        fb.ret(Some(r));
        let leaf = m.add_function(fb.finish().unwrap());
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let nn = fb.const_i64(50);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let base = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let v = fb.call(leaf, Type::I64, &[i]);
        let addr = fb.gep(base, i, 8, 0);
        fb.store(v, addr);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(zero));
        m.add_function(fb.finish().unwrap());

        let p = profile_of(&m);
        let (_, attr) = evaluate_explained(
            &p,
            ExecModel::Doall,
            cfg(ReducMode::Reduc0, DepMode::Dep0, FnMode::Fn0),
        );
        let l = attr.loops.iter().find(|l| l.gap > 0).expect("gated loop");
        assert!(
            l.limiters
                .iter()
                .any(|lim| matches!(lim.kind, LimiterKind::CallGate(_)) && lim.weight > 0),
            "fn0 gate must be attributed to calls: {:?}",
            l.limiters
        );
        // Under fn3 the gate is gone and so is its limiter.
        let (_, attr3) = evaluate_explained(
            &p,
            ExecModel::Doall,
            cfg(ReducMode::Reduc0, DepMode::Dep0, FnMode::Fn3),
        );
        for l in &attr3.loops {
            assert!(
                !l.limiters
                    .iter()
                    .any(|lim| matches!(lim.kind, LimiterKind::CallGate(_))),
                "fn3 cannot gate: {:?}",
                l.limiters
            );
        }
    }

    #[test]
    fn speedup_never_below_one() {
        let p = profile_of(&register_lcd_program(50));
        for model in ExecModel::all() {
            for config in Config::all() {
                let r = evaluate(&p, model, config);
                assert!(
                    r.speedup >= 0.999,
                    "{model} {config}: speedup {} < 1",
                    r.speedup
                );
                assert!(r.best_cost <= r.total_cost);
                assert!((0.0..=100.0).contains(&r.coverage));
            }
        }
    }
}
