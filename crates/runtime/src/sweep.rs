//! The parallel sweep engine: profile-once / evaluate-many across
//! worker threads, with deterministic merging.
//!
//! The paper's headline figures need up to `3 models × 32 configs = 96`
//! evaluations per benchmark (Figs 2–5, Table II). Profiling — the
//! instrumented interpreter run — is the expensive step and depends only
//! on the program, so the engine profiles each benchmark **once**, wraps
//! the immutable [`Profile`] in an [`Arc`], and fans the
//! `(benchmark × model × config)` work-list out over scoped worker
//! threads pulling from an atomic work-stealing index:
//!
//! - [`Jobs`] resolves the worker count (`--jobs N` flag, then the
//!   `LP_JOBS` environment variable, then the machine's available
//!   parallelism);
//! - [`parallel_map`] is the deterministic fan-out primitive: results
//!   come back **in input order** no matter which worker finished which
//!   task when, so every downstream report is byte-identical to the
//!   serial run;
//! - [`sweep`] / [`sweep_points`] evaluate a work-list of
//!   [`SweepPoint`]s against shared profiles, counting profile-cache
//!   hits ([`lp_obs::Counter::SweepProfileCacheHits`]) and tasks claimed
//!   outside a worker's static shard
//!   ([`lp_obs::Counter::SweepTasksStolen`]);
//! - per-worker observability (spans, counters) accumulates in
//!   [`lp_obs::LocalStats`] and merges into the global registry in one
//!   flush per worker, so concurrent workers never race on a summary.
//!
//! `jobs = 1` takes a plain in-order loop on the calling thread — the
//! exact code path the serial pipeline always took — which is what the
//! determinism differential tests compare the parallel path against.

use crate::config::{Config, ExecModel};
use crate::eval::{evaluate_with, EvalOptions, EvalReport};
use crate::profile::Profile;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Worker-count knob for the sweep engine.
///
/// The engine never spawns more workers than tasks, so over-asking is
/// harmless; `Jobs::new(0)` clamps to 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Jobs(usize);

impl Jobs {
    /// Exactly `n` workers (clamped to at least 1).
    #[must_use]
    pub fn new(n: usize) -> Jobs {
        Jobs(n.max(1))
    }

    /// The serial engine: one worker, plain in-order loop.
    #[must_use]
    pub const fn serial() -> Jobs {
        Jobs(1)
    }

    /// One worker per available hardware thread.
    #[must_use]
    pub fn available() -> Jobs {
        Jobs(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    }

    /// Resolves the worker count with the binaries' precedence:
    /// an explicit `--jobs N` flag wins, else a numeric `LP_JOBS`
    /// environment variable, else [`Jobs::available`].
    ///
    /// A zero from either source is an explicit-but-degenerate request:
    /// it clamps to one worker with a warning rather than silently
    /// falling back to full parallelism (running wide when the caller
    /// asked for "none" is the more surprising failure mode).
    #[must_use]
    pub fn resolve(flag: Option<usize>) -> Jobs {
        if let Some(n) = flag {
            if n == 0 {
                lp_obs::lp_warn!("--jobs 0 requested; clamping to 1 worker");
            }
            return Jobs::new(n);
        }
        if let Ok(v) = std::env::var("LP_JOBS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n == 0 {
                    lp_obs::lp_warn!("LP_JOBS=0 requested; clamping to 1 worker");
                }
                return Jobs::new(n);
            }
        }
        Jobs::available()
    }

    /// The resolved worker count (always ≥ 1).
    #[must_use]
    pub fn get(self) -> usize {
        self.0
    }

    /// Effective fan-out width for a work-list of `items` tasks: the
    /// worker count clamped so no thread is spawned without work. This
    /// is the single place every fan-out site ([`parallel_map`], and
    /// through it the sweep engine and the replay chunk executor)
    /// computes its width — in particular `items < jobs` narrows the
    /// pool to `items` real threads, it does **not** serialize (only
    /// `effective ≤ 1` takes the in-order serial path).
    #[must_use]
    pub fn effective(self, items: usize) -> usize {
        self.0.min(items)
    }
}

impl Default for Jobs {
    fn default() -> Jobs {
        Jobs::available()
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One named program in a sweep: a profile taken once and shared by
/// every `(model, config)` evaluation via [`Arc`].
#[derive(Debug, Clone)]
pub struct SweepUnit {
    /// Display name (usually the benchmark name, e.g. `429.mcf`).
    pub name: String,
    /// The shared immutable profile.
    pub profile: Arc<Profile>,
}

impl SweepUnit {
    /// Wraps an already-shared profile.
    #[must_use]
    pub fn new(name: impl Into<String>, profile: Arc<Profile>) -> SweepUnit {
        SweepUnit {
            name: name.into(),
            profile,
        }
    }

    /// Takes ownership of a freshly-taken profile, naming the unit after
    /// the profiled program.
    #[must_use]
    pub fn from_profile(profile: Profile) -> SweepUnit {
        SweepUnit {
            name: profile.program.clone(),
            profile: Arc::new(profile),
        }
    }
}

/// One `(unit, model, config)` evaluation point of a sweep work-list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Index into the sweep's unit slice.
    pub unit: usize,
    /// Execution model to evaluate.
    pub model: ExecModel,
    /// Configuration to evaluate.
    pub config: Config,
}

/// The full cross-product work-list in stable `(unit, model, config)`
/// order — the deterministic merge key: results are always reported in
/// this order regardless of which worker computed what.
#[must_use]
pub fn grid(units: usize, models: &[ExecModel], configs: &[Config]) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(units * models.len() * configs.len());
    for unit in 0..units {
        for &model in models {
            for &config in configs {
                points.push(SweepPoint {
                    unit,
                    model,
                    config,
                });
            }
        }
    }
    points
}

/// Deterministic parallel map: applies `f` to every item using `jobs`
/// scoped workers pulling indices from a shared atomic counter, and
/// returns the results **in input order**.
///
/// `f` receives `(index, &item)`. With `jobs = 1` (or ≤ 1 item) no
/// thread is spawned and the items are mapped by a plain in-order loop
/// on the calling thread, so the serial path is bit-for-bit the code
/// the pipeline always ran.
///
/// Each worker times itself with a `sweep-worker` span and counts tasks
/// it claimed outside its static `index % workers` shard as
/// [`lp_obs::Counter::SweepTasksStolen`]; both are accumulated in a
/// per-worker [`lp_obs::LocalStats`] and merged into the global registry
/// in one flush per worker.
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn parallel_map<T, R, F>(items: &[T], jobs: Jobs, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.effective(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let reg = lp_obs::registry();
    let total = items.len();
    // Progress/ETA marks at the quartiles (coarse flight-recorder
    // breadcrumbs, not a live progress bar).
    let milestones = [total / 4, total / 2, total * 3 / 4];

    let mut harvests: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let next = &next;
                let completed = &completed;
                let f = &f;
                scope.spawn(move || {
                    let mut local = lp_obs::LocalStats::new();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut stolen = 0u64;
                    let start_ns = reg.now_ns();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        if i % workers != worker {
                            stolen += 1;
                        }
                        out.push((i, f(i, &items[i])));
                        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                        local.record_journal(
                            lp_obs::EventKind::SweepTaskDone,
                            done as u64,
                            total as u64,
                        );
                        if done > 0 && milestones.contains(&done) {
                            let elapsed_ms = reg.now_ns().saturating_sub(start_ns) / 1_000_000;
                            let eta_ms = elapsed_ms * (total - done) as u64 / done as u64;
                            local.record_journal(lp_obs::EventKind::SweepEta, done as u64, eta_ms);
                        }
                    }
                    local.record_span(lp_obs::SpanRecord {
                        name: "sweep-worker",
                        start_ns,
                        end_ns: reg.now_ns(),
                        depth: 0,
                        tid: lp_obs::span::thread_tid(),
                    });
                    local.add(lp_obs::Counter::SweepTasksStolen, stolen);
                    local.flush(reg);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    // Deterministic reduction: every index was claimed by exactly one
    // worker, so placing results by index reconstructs input order no
    // matter the completion schedule.
    for (i, r) in harvests.drain(..).flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("index {i} never claimed")))
        .collect()
}

/// Evaluates an explicit work-list of [`SweepPoint`]s against shared
/// profiles on `jobs` workers. Results come back in `points` order —
/// byte-identical whatever the worker count.
///
/// Every evaluation of a unit beyond its first is a profile-cache hit
/// (the profile is shared, not re-taken); the engine credits them to
/// [`lp_obs::Counter::SweepProfileCacheHits`].
///
/// # Panics
/// Panics if a point's `unit` index is out of bounds for `units`.
#[must_use]
pub fn sweep_points(
    units: &[SweepUnit],
    points: &[SweepPoint],
    jobs: Jobs,
    options: EvalOptions,
) -> Vec<EvalReport> {
    let _span = lp_obs::span!("sweep");
    lp_obs::journal::record(
        lp_obs::EventKind::SweepStarted,
        points.len() as u64,
        jobs.get() as u64,
    );
    let reports = parallel_map(points, jobs, |_, p| {
        evaluate_with(&units[p.unit].profile, p.model, p.config, options)
    });
    let distinct: std::collections::HashSet<usize> = points.iter().map(|p| p.unit).collect();
    lp_obs::counters().add(
        lp_obs::Counter::SweepProfileCacheHits,
        (points.len() - distinct.len()) as u64,
    );
    lp_obs::journal::record(
        lp_obs::EventKind::SweepCompleted,
        points.len() as u64,
        distinct.len() as u64,
    );
    reports
}

/// Evaluates the full `units × models × configs` lattice on `jobs`
/// workers (the [`grid`] order: unit-major, then model, then config).
#[must_use]
pub fn sweep(
    units: &[SweepUnit],
    models: &[ExecModel],
    configs: &[Config],
    jobs: Jobs,
    options: EvalOptions,
) -> Vec<EvalReport> {
    sweep_points(units, &grid(units.len(), models, configs), jobs, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DepMode, FnMode, ReducMode};
    use crate::eval::evaluate;
    use crate::tracker::profile_module;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Global, IcmpPred, Module, Type};

    fn tiny_program(name: &str, n: i64) -> Module {
        let mut m = Module::new(name);
        let g = m.add_global(Global::zeroed("a", n as u64 + 1));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let nn = fb.const_i64(n);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let base = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let addr = fb.gep(base, i, 8, 0);
        let v = fb.mul(i, i);
        fb.store(v, addr);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(zero));
        m.add_function(fb.finish().unwrap());
        m
    }

    fn unit_of(name: &str, n: i64) -> SweepUnit {
        let m = tiny_program(name, n);
        let analysis = analyze_module(&m);
        let (p, _) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
        SweepUnit::from_profile(p)
    }

    #[test]
    fn jobs_resolution_precedence() {
        assert_eq!(Jobs::new(0).get(), 1);
        assert_eq!(Jobs::new(7).get(), 7);
        assert_eq!(Jobs::serial().get(), 1);
        assert!(Jobs::available().get() >= 1);
        assert_eq!(Jobs::resolve(Some(3)).get(), 3);
        // An explicit zero clamps to the serial engine, not to the
        // machine's full parallelism.
        assert_eq!(Jobs::resolve(Some(0)).get(), 1);
        // The flag wins even when LP_JOBS is set; with neither, the
        // machine decides. (Environment manipulation is avoided here —
        // LP_JOBS handling is covered by the bench CLI tests.)
        assert!(Jobs::resolve(None).get() >= 1);
        assert_eq!(Jobs::default().get(), Jobs::available().get());
        assert_eq!(Jobs::new(4).to_string(), "4");
    }

    #[test]
    fn grid_is_unit_major_and_complete() {
        let models = [ExecModel::Doall, ExecModel::Helix];
        let configs = Config::all();
        let points = grid(3, &models, &configs);
        assert_eq!(points.len(), 3 * 2 * 32);
        // Stable lexicographic order over (unit, model, config).
        assert_eq!(points[0].unit, 0);
        assert_eq!(points[0].model, ExecModel::Doall);
        assert_eq!(points.last().unwrap().unit, 2);
        assert_eq!(points.last().unwrap().model, ExecModel::Helix);
        for w in points.windows(2) {
            assert!(w[0].unit <= w[1].unit);
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..997).collect();
        for jobs in [1, 2, 3, 8] {
            let out = parallel_map(&items, Jobs::new(jobs), |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out.len(), items.len());
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, (i * i) as u64, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, Jobs::new(8), |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], Jobs::new(8), |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn effective_width_clamps_to_work_not_to_serial() {
        assert_eq!(Jobs::new(8).effective(3), 3);
        assert_eq!(Jobs::new(2).effective(100), 2);
        assert_eq!(Jobs::new(8).effective(0), 0);
        // Jobs::new(0) itself clamps to one worker at construction.
        assert_eq!(Jobs::new(0).effective(5), 1);
    }

    /// Pins that `items.len() < jobs` narrows the pool rather than
    /// serializing: with two items and eight requested workers, both
    /// items must be in flight *concurrently* (the barrier only opens
    /// when two distinct threads reach it; a serial fallback would
    /// deadlock here, failing the test by timeout) on distinct spawned
    /// threads.
    #[test]
    fn parallel_map_runs_concurrently_when_items_below_jobs() {
        use std::sync::{Barrier, Mutex};
        let barrier = Barrier::new(2);
        let tids = Mutex::new(Vec::new());
        let items = [0u32, 1];
        let out = parallel_map(&items, Jobs::new(8), |i, &x| {
            barrier.wait();
            tids.lock().unwrap().push(std::thread::current().id());
            assert_eq!(i as u32, x);
            x + 10
        });
        assert_eq!(out, vec![10, 11]);
        let tids = tids.into_inner().unwrap();
        assert_eq!(tids.len(), 2);
        assert_ne!(tids[0], tids[1], "both items must run on distinct workers");
        assert!(
            !tids.contains(&std::thread::current().id()),
            "workers are spawned threads, not the caller"
        );
    }

    #[test]
    fn sweep_matches_serial_evaluate_for_every_point() {
        let units = [unit_of("alpha", 40), unit_of("beta", 25)];
        let models = ExecModel::all();
        let configs = Config::all();
        let points = grid(units.len(), &models, &configs);
        let parallel = sweep_points(&units, &points, Jobs::new(8), EvalOptions::default());
        assert_eq!(parallel.len(), points.len());
        for (p, report) in points.iter().zip(&parallel) {
            let reference = evaluate(&units[p.unit].profile, p.model, p.config);
            assert_eq!(
                format!("{reference:?}"),
                format!("{report:?}"),
                "{} {} {}",
                units[p.unit].name,
                p.model,
                p.config
            );
        }
    }

    #[test]
    fn sweep_output_is_identical_across_job_counts() {
        let units = [unit_of("a", 30), unit_of("b", 20), unit_of("c", 10)];
        let models = ExecModel::all();
        let configs = Config::all();
        let serial = sweep(
            &units,
            &models,
            &configs,
            Jobs::serial(),
            EvalOptions::default(),
        );
        for jobs in [2, 4, 8] {
            let par = sweep(
                &units,
                &models,
                &configs,
                Jobs::new(jobs),
                EvalOptions::default(),
            );
            assert_eq!(
                format!("{serial:?}"),
                format!("{par:?}"),
                "jobs={jobs} diverged"
            );
        }
    }

    #[test]
    fn sweep_journals_progress_breadcrumbs() {
        let units = [unit_of("bread", 12)];
        let points = grid(1, &ExecModel::all(), &Config::all());
        let journal = lp_obs::journal::global();
        let (before, _) = journal.snapshot();
        let _ = sweep_points(&units, &points, Jobs::new(4), EvalOptions::default());
        let (after, records) = journal.snapshot();
        assert!(after > before);
        let kinds: Vec<lp_obs::EventKind> = records.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&lp_obs::EventKind::SweepStarted));
        assert!(kinds.contains(&lp_obs::EventKind::SweepCompleted));
        assert!(kinds.contains(&lp_obs::EventKind::SweepTaskDone));
        // Per-task breadcrumbs carry (done, total) with done <= total.
        let done_recs: Vec<_> = records
            .iter()
            .filter(|r| r.kind == lp_obs::EventKind::SweepTaskDone)
            .collect();
        assert!(done_recs.iter().all(|r| r.a >= 1 && r.a <= r.b));
        assert!(done_recs
            .iter()
            .any(|r| r.b == points.len() as u64 && r.a == r.b));
    }

    #[test]
    fn sweep_counts_profile_cache_hits() {
        let units = [unit_of("solo", 15)];
        let before = lp_obs::counters().get(lp_obs::Counter::SweepProfileCacheHits);
        let cfg = Config::new(ReducMode::Reduc0, DepMode::Dep0, FnMode::Fn0);
        let points: Vec<SweepPoint> = ExecModel::all()
            .into_iter()
            .map(|model| SweepPoint {
                unit: 0,
                model,
                config: cfg,
            })
            .collect();
        let reports = sweep_points(&units, &points, Jobs::serial(), EvalOptions::default());
        assert_eq!(reports.len(), 3);
        let after = lp_obs::counters().get(lp_obs::Counter::SweepProfileCacheHits);
        // Three evaluations of one shared profile: two cache hits.
        assert_eq!(after - before, 2);
    }
}
