//! The profiler: Loopapalooza's run-time component.
//!
//! [`Profiler`] implements [`lp_interp::EventSink`] and reconstructs, from
//! the instrumentation call-back stream, everything §III-B needs:
//!
//! - the dynamic region tree (function activations and loop instances)
//!   with iteration start stamps derived from header-block entries;
//! - cross-iteration memory RAW conflicts via per-instance last-writer
//!   conflict tracking, with the cactus-stack filter of §II-E (accesses
//!   to frames created during the current iteration are iteration-local
//!   and cannot conflict);
//! - register-LCD value streams fed through the hybrid value predictor,
//!   recording mispredicted iterations (`dep2`) and maximum producer
//!   offsets (`dep1` HELIX sync deltas);
//! - the worst dynamic call class per loop instance (`fn0..fn3` gate).

use crate::profile::{
    CallClass, LcdInstance, LoopInstance, LoopMeta, Profile, Region, RegionId, RegionKind,
};
use lp_analysis::{LcdClass, LoopId, ModuleAnalysis, Purity};
use lp_interp::{EventSink, Machine, MachineConfig, MeteredSink, RunResult, Value, STACK_BASE};
use lp_ir::{BlockId, Builtin, FuncId, Inst, Module, ValueId, ValueKind};
use lp_obs::{span, Counter, Hist, Histogram, PredictorKind};
use lp_predict::HybridPredictor;
use std::collections::{BTreeSet, HashMap};

/// An actively executing loop instance (moved into the region tree when
/// the loop exits).
#[derive(Debug)]
struct ActiveLoop {
    region: RegionId,
    func: u32,
    loop_id: u32,
    frame_depth: u32,
    cur_iter: u32,
    iter_start: u64,
    iter_starts: Vec<u64>,
    last_writer: HashMap<u64, (u32, u64)>,
    conflicts: BTreeSet<u32>,
    max_skew: u64,
    max_producer_rel: u64,
    min_consumer_rel: u64,
    edges: u64,
    lcds: Vec<LcdInstance>,
    call_class: CallClass,
}

#[derive(Debug, Clone, Copy)]
struct FrameRec {
    base: u64,
    push_cost: u64,
}

/// Synthetic address standing in for the architectural stack pointer when
/// the cactus-stack assumption is disabled (kept out of the stack region
/// so the frame filter never hides it).
const SP_HAZARD_ADDR: u64 = crate::profile_sp_hazard_addr();

/// Profiler behaviour knobs (ablations).
#[derive(Debug, Clone, Copy)]
pub struct ProfilerOptions {
    /// Apply the cactus-stack filter of §II-E: accesses to frames created
    /// during the current iteration are iteration-local and generate no
    /// conflicts. Disabling it models a conventional sequential call
    /// stack, where reused frame addresses serialize loops with calls.
    pub cactus_stack: bool,
}

impl Default for ProfilerOptions {
    fn default() -> ProfilerOptions {
        ProfilerOptions { cactus_stack: true }
    }
}

/// The run-time component: consumes interpreter events, produces a
/// [`Profile`].
#[derive(Debug)]
pub struct Profiler<'a> {
    analysis: &'a ModuleAnalysis,
    program: String,
    /// Per function: header block -> loop id.
    header_loop: Vec<HashMap<u32, LoopId>>,
    /// `(func, phi value)` -> `(loop, traced-lcd index)`.
    traced: HashMap<(u32, u32), (u32, usize)>,
    /// `(func, latch incoming value)` -> traced LCDs it feeds.
    watched: HashMap<(u32, u32), Vec<(u32, usize)>>,
    loop_meta: Vec<LoopMeta>,
    meta_index: HashMap<(u32, u32), usize>,
    // Dynamic state.
    now: u64,
    regions: Vec<Region>,
    region_stack: Vec<RegionId>,
    loop_stack: Vec<ActiveLoop>,
    frames: Vec<FrameRec>,
    call_depth: u32,
    predictors: HashMap<(u32, u32), HybridPredictor>,
    options: ProfilerOptions,
    cactus_filter_hits: u64,
    /// Function names by [`FuncId`] (for the collapsed-stack export).
    func_names: Vec<String>,
    /// Iteration distance of each cross-iteration RAW edge, accumulated
    /// lock-free here and merged into the global registry at flush.
    conflict_dists: Histogram,
}

impl<'a> Profiler<'a> {
    /// Prepares the profiler for `module` using its compile-time analysis.
    #[must_use]
    pub fn new(module: &Module, analysis: &'a ModuleAnalysis) -> Profiler<'a> {
        Profiler::with_options(module, analysis, ProfilerOptions::default())
    }

    /// As [`Profiler::new`] with explicit behaviour knobs.
    #[must_use]
    pub fn with_options(
        module: &Module,
        analysis: &'a ModuleAnalysis,
        options: ProfilerOptions,
    ) -> Profiler<'a> {
        let mut header_loop: Vec<HashMap<u32, LoopId>> = Vec::new();
        let mut traced = HashMap::new();
        let mut watched: HashMap<(u32, u32), Vec<(u32, usize)>> = HashMap::new();
        let mut loop_meta = Vec::new();
        let mut meta_index = HashMap::new();

        for (fid, func) in module.iter_functions() {
            let fa = analysis.function(fid);
            let mut headers = HashMap::new();
            for (lid, lp) in fa.loops.iter() {
                headers.insert(lp.header.0, lid);
                let lcds = &fa.lcds[lid.index()];
                let traced_phis: Vec<(ValueId, LcdClass)> = lcds
                    .phis
                    .iter()
                    .filter(|(_, c)| !c.is_computable())
                    .map(|&(v, c)| (v, c))
                    .collect();
                let computable = lcds.phis.len() - traced_phis.len();
                let meta_idx = loop_meta.len();
                meta_index.insert((fid.0, lid.0), meta_idx);
                // Register traced phis and their latch producers.
                if lp.latches.len() == 1 {
                    let latch = lp.latches[0];
                    for (idx, (phi, _)) in traced_phis.iter().enumerate() {
                        traced.insert((fid.0, phi.0), (lid.0, idx));
                        if let ValueKind::Inst(iid) = func.value(*phi) {
                            if let Inst::Phi { incomings, .. } = &func.inst(*iid).inst {
                                if let Some((_, update)) =
                                    incomings.iter().find(|(b, _)| *b == latch)
                                {
                                    // Only instruction results have def
                                    // events; invariant updates produce at
                                    // offset 0 anyway.
                                    if matches!(func.value(*update), ValueKind::Inst(_)) {
                                        watched
                                            .entry((fid.0, update.0))
                                            .or_default()
                                            .push((lid.0, idx));
                                    }
                                }
                            }
                        }
                    }
                }
                loop_meta.push(LoopMeta {
                    func: fid,
                    loop_id: lid,
                    func_name: func.name.clone(),
                    header: lp.header,
                    depth: lp.depth,
                    traced_phis,
                    computable_phis: computable as u32,
                });
            }
            header_loop.push(headers);
        }

        Profiler {
            analysis,
            program: module.name.clone(),
            func_names: module
                .iter_functions()
                .map(|(_, f)| f.name.clone())
                .collect(),
            conflict_dists: Histogram::default(),
            header_loop,
            traced,
            watched,
            loop_meta,
            meta_index,
            now: 0,
            regions: Vec::new(),
            region_stack: Vec::new(),
            loop_stack: Vec::new(),
            frames: Vec::new(),
            call_depth: 0,
            predictors: HashMap::new(),
            options,
            cactus_filter_hits: 0,
        }
    }

    /// The `(func, value)` pairs the machine must report definitions for.
    #[must_use]
    pub fn watched_values(&self) -> Vec<(FuncId, ValueId)> {
        self.watched
            .keys()
            .map(|&(f, v)| (FuncId(f), ValueId(v)))
            .collect()
    }

    fn push_region(&mut self, kind: RegionKind) -> RegionId {
        let parent = self.region_stack.last().copied();
        let parent_iter = match (parent, self.loop_stack.last()) {
            (Some(p), Some(al)) if al.region == p => al.cur_iter,
            _ => 0,
        };
        let rid = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            parent,
            parent_iter,
            start: self.now,
            end: self.now,
            kind,
            children: Vec::new(),
        });
        if let Some(p) = parent {
            self.regions[p.index()].children.push(rid);
        }
        self.region_stack.push(rid);
        rid
    }

    fn close_top_loop(&mut self, stamp: u64) {
        let al = self.loop_stack.pop().expect("active loop to close");
        let rid = self
            .region_stack
            .pop()
            .expect("loop region on region stack");
        debug_assert_eq!(rid, al.region, "region stack out of sync");
        let meta = self.meta_index[&(al.func, al.loop_id)];
        let region = &mut self.regions[rid.index()];
        region.end = stamp;
        region.kind = RegionKind::Loop(LoopInstance {
            meta,
            iter_starts: al.iter_starts,
            mem_conflict_iters: al.conflicts.into_iter().collect(),
            mem_max_skew: al.max_skew,
            mem_max_producer_rel: al.max_producer_rel,
            mem_min_consumer_rel: al.min_consumer_rel,
            mem_edges: al.edges,
            lcds: al.lcds,
            call_class: al.call_class,
        });
    }

    fn bump_call_class(&mut self, class: CallClass) {
        for al in &mut self.loop_stack {
            if class > al.call_class {
                al.call_class = class;
            }
        }
    }

    fn track_access(&mut self, addr: u64, is_store: bool, now: u64) {
        // Cactus-stack filter: find the owning frame's push time for stack
        // addresses. Frames have strictly increasing bases, so the owner
        // is the last frame with base <= addr.
        let frame_push = if self.options.cactus_stack && addr >= STACK_BASE {
            let i = self.frames.partition_point(|fr| fr.base <= addr);
            if i == 0 {
                0
            } else {
                self.frames[i - 1].push_cost
            }
        } else {
            0
        };
        self.now = self.now.max(now);
        for al in &mut self.loop_stack {
            // Frame created during this instance's current iteration: the
            // access is iteration-local (disjoint cactus-stack frames,
            // paper §II-E) — skip conflict tracking at this level.
            if frame_push >= al.iter_start && frame_push > 0 {
                self.cactus_filter_hits += 1;
                continue;
            }
            let rel = now.saturating_sub(al.iter_start);
            if is_store {
                al.last_writer.insert(addr, (al.cur_iter, rel));
            } else if let Some(&(w_iter, w_rel)) = al.last_writer.get(&addr) {
                if w_iter < al.cur_iter {
                    al.conflicts.insert(al.cur_iter);
                    al.edges += 1;
                    let span = u64::from(al.cur_iter - w_iter);
                    self.conflict_dists.record(span);
                    let skew = w_rel.saturating_sub(rel) / span;
                    if skew > al.max_skew {
                        al.max_skew = skew;
                    }
                    al.max_producer_rel = al.max_producer_rel.max(w_rel);
                    al.min_consumer_rel = al.min_consumer_rel.min(rel);
                }
            }
        }
    }

    /// Publishes this run's tallies into the process-wide [`lp_obs`]
    /// counter bank: regions/loops built, RAW conflict edges, cactus-stack
    /// filter hits, per-iteration-count histogram samples, and per-kind
    /// value-predictor hit/miss totals.
    fn flush_counters(&self) {
        let c = lp_obs::counters();
        c.add(Counter::RegionsCreated, self.regions.len() as u64);
        let mut edges = 0u64;
        let mut loops = 0u64;
        for r in &self.regions {
            if let RegionKind::Loop(inst) = &r.kind {
                loops += 1;
                edges += inst.mem_edges;
                lp_obs::record_hist(Hist::LoopIterations, inst.iterations() as u64);
            }
        }
        c.add(Counter::LoopInstances, loops);
        c.add(Counter::RawConflicts, edges);
        c.add(Counter::CactusFilterHits, self.cactus_filter_hits);
        lp_obs::merge_hist(Hist::ConflictDistance, &self.conflict_dists);
        let components = [
            PredictorKind::LastValue,
            PredictorKind::Stride,
            PredictorKind::TwoDeltaStride,
            PredictorKind::Fcm,
        ];
        for pred in self.predictors.values() {
            let s = pred.stats();
            c.add(Counter::PredictorHit(PredictorKind::Hybrid), s.correct);
            c.add(
                Counter::PredictorMiss(PredictorKind::Hybrid),
                s.observed - s.correct,
            );
            for (kind, cs) in components.iter().zip(pred.component_stats()) {
                c.add(Counter::PredictorHit(*kind), cs.correct);
                c.add(Counter::PredictorMiss(*kind), cs.observed - cs.correct);
            }
        }
    }

    /// Finalizes the profile. Call after the machine run completes.
    ///
    /// # Panics
    /// Panics if regions are still open (the run did not complete).
    #[must_use]
    pub fn finish(mut self) -> Profile {
        // A trapped/aborted run may leave regions open; close them at the
        // final stamp so partial profiles remain well-formed.
        let stamp = self.now;
        while !self.loop_stack.is_empty() {
            self.close_top_loop(stamp);
        }
        while let Some(rid) = self.region_stack.pop() {
            self.regions[rid.index()].end = stamp;
        }
        self.flush_counters();
        Profile {
            program: self.program,
            total_cost: self.now,
            regions: self.regions,
            loop_meta: self.loop_meta,
            meta_index: self.meta_index,
            func_names: self.func_names,
        }
    }
}

impl EventSink for Profiler<'_> {
    fn block_entered(&mut self, func: FuncId, block: BlockId, _cost: u64, now: u64) {
        let stamp = now;
        self.now = self.now.max(now);
        // Close loops (of this frame) the control flow has left.
        while let Some(top) = self.loop_stack.last() {
            if top.frame_depth != self.call_depth || top.func != func.0 {
                break;
            }
            let fa = self.analysis.function(func);
            let lp = fa.loops.loop_(LoopId(top.loop_id));
            if lp.contains(block) {
                break;
            }
            self.close_top_loop(stamp);
        }
        // Header entry: new iteration of the top instance, or a new
        // instance.
        if let Some(&lid) = self.header_loop[func.index()].get(&block.0) {
            let is_top = self.loop_stack.last().is_some_and(|t| {
                t.frame_depth == self.call_depth && t.func == func.0 && t.loop_id == lid.0
            });
            if is_top {
                let t = self.loop_stack.last_mut().expect("checked above");
                t.cur_iter += 1;
                t.iter_start = stamp;
                t.iter_starts.push(stamp);
            } else {
                let meta = self.meta_index[&(func.0, lid.0)];
                let n_lcds = self.loop_meta[meta].traced_phis.len();
                let region = self.push_region(RegionKind::Loop(LoopInstance {
                    meta,
                    iter_starts: Vec::new(),
                    mem_conflict_iters: Vec::new(),
                    mem_max_skew: 0,
                    mem_max_producer_rel: 0,
                    mem_min_consumer_rel: u64::MAX,
                    mem_edges: 0,
                    lcds: Vec::new(),
                    call_class: CallClass::NoCalls,
                }));
                self.regions[region.index()].start = stamp;
                self.loop_stack.push(ActiveLoop {
                    region,
                    func: func.0,
                    loop_id: lid.0,
                    frame_depth: self.call_depth,
                    cur_iter: 0,
                    iter_start: stamp,
                    iter_starts: vec![stamp],
                    last_writer: HashMap::new(),
                    conflicts: BTreeSet::new(),
                    max_skew: 0,
                    max_producer_rel: 0,
                    min_consumer_rel: u64::MAX,
                    edges: 0,
                    lcds: vec![LcdInstance::default(); n_lcds],
                    call_class: CallClass::NoCalls,
                });
            }
        }
    }

    fn phi_resolved(
        &mut self,
        func: FuncId,
        _block: BlockId,
        phi: ValueId,
        value: Value,
        _now: u64,
    ) {
        if let Some(&(lid, idx)) = self.traced.get(&(func.0, phi.0)) {
            if let Some(al) = self
                .loop_stack
                .iter_mut()
                .rev()
                .find(|a| a.func == func.0 && a.loop_id == lid)
            {
                let pred = self.predictors.entry((func.0, phi.0)).or_default();
                let hit = pred.observe(value.fingerprint());
                let lcd = &mut al.lcds[idx];
                lcd.observed += 1;
                if hit {
                    lcd.predicted += 1;
                } else if al.cur_iter >= 1 {
                    // Iteration 0 consumes the loop-invariant initial
                    // value — not a cross-iteration dependency.
                    lcd.mispredict_iters.push(al.cur_iter);
                }
            }
        }
    }

    fn load(&mut self, addr: u64, now: u64) {
        self.track_access(addr, false, now);
    }

    fn store(&mut self, addr: u64, now: u64) {
        self.track_access(addr, true, now);
    }

    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        self.now = self.now.max(now);
        if !self.options.cactus_stack && !self.loop_stack.is_empty() {
            // Conventional sequential stack: the stack-pointer update is
            // a read-modify-write in strict program order (paper §II-E) —
            // a frequent memory LCD for every loop containing calls.
            self.track_access(SP_HAZARD_ADDR, false, now);
            self.track_access(SP_HAZARD_ADDR, true, now);
        }
        if !self.loop_stack.is_empty() {
            let class = match self.analysis.callgraph.purity(func) {
                Purity::Pure => CallClass::PureCalls,
                Purity::Impure => CallClass::InstrumentedCalls,
            };
            self.bump_call_class(class);
        }
        self.call_depth += 1;
        self.frames.push(FrameRec {
            base: frame_base,
            push_cost: now,
        });
        self.push_region(RegionKind::Call { func });
    }

    fn func_exited(&mut self, _func: FuncId, now: u64) {
        self.now = self.now.max(now);
        let stamp = now;
        while self
            .loop_stack
            .last()
            .is_some_and(|t| t.frame_depth == self.call_depth)
        {
            self.close_top_loop(stamp);
        }
        let rid = self.region_stack.pop().expect("call region to close");
        self.regions[rid.index()].end = stamp;
        self.frames.pop();
        self.call_depth -= 1;
    }

    fn builtin_called(&mut self, _caller: FuncId, builtin: Builtin, _now: u64) {
        let class = if builtin.is_pure() {
            CallClass::PureCalls
        } else if builtin.is_thread_safe() {
            CallClass::InstrumentedCalls
        } else {
            CallClass::UnsafeCalls
        };
        self.bump_call_class(class);
    }

    fn value_defined(&mut self, func: FuncId, value: ValueId, _val: Value, now: u64) {
        self.now = self.now.max(now);
        let Some(list) = self.watched.get(&(func.0, value.0)) else {
            return;
        };
        let list = list.clone();
        for (lid, idx) in list {
            if let Some(al) = self
                .loop_stack
                .iter_mut()
                .rev()
                .find(|a| a.func == func.0 && a.loop_id == lid)
            {
                let rel = now.saturating_sub(al.iter_start);
                if rel > al.lcds[idx].max_def_rel {
                    al.lcds[idx].max_def_rel = rel;
                }
            }
        }
    }
}

/// Runs `module` under the profiler and returns the profile plus the raw
/// run result.
///
/// # Errors
/// Propagates interpreter traps ([`lp_interp::InterpError`]).
pub fn profile_module(
    module: &Module,
    analysis: &ModuleAnalysis,
    args: &[Value],
    machine_config: MachineConfig,
) -> Result<(Profile, RunResult), lp_interp::InterpError> {
    profile_module_with(
        module,
        analysis,
        args,
        machine_config,
        ProfilerOptions::default(),
    )
}

/// As [`profile_module`] with explicit profiler knobs (ablations).
///
/// # Errors
/// Propagates interpreter traps.
pub fn profile_module_with(
    module: &Module,
    analysis: &ModuleAnalysis,
    args: &[Value],
    mut machine_config: MachineConfig,
    options: ProfilerOptions,
) -> Result<(Profile, RunResult), lp_interp::InterpError> {
    let _span = span!("profile");
    let reg = lp_obs::registry();
    let t0 = reg.now_ns();
    let mut profiler = Profiler::with_options(module, analysis, options);
    machine_config.watched_values = profiler.watched_values();
    let mut metered = MeteredSink::new(&mut profiler);
    let result = Machine::with_config(module, &mut metered, machine_config).run(args);
    let counts = metered.counts();
    let c = lp_obs::counters();
    c.add(Counter::EventsConsumed, counts.total());
    c.add(Counter::BlocksEntered, counts.blocks);
    c.add(Counter::PhisResolved, counts.phis);
    c.add(Counter::Loads, counts.loads);
    c.add(Counter::Stores, counts.stores);
    c.add(Counter::FuncsEntered, counts.funcs);
    c.add(Counter::BuiltinCalls, counts.builtins);
    c.add(Counter::ValueDefs, counts.defs);
    c.add(Counter::ProfilesTaken, 1);
    lp_obs::record_hist(Hist::ProfileNanos, reg.now_ns().saturating_sub(t0));
    let result = result?;
    Ok((profiler.finish(), result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_analysis::analyze_module;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Global, IcmpPred, Module, Type};

    fn profile(m: &Module, args: &[Value]) -> Profile {
        let analysis = analyze_module(m);
        let (p, _) = profile_module(m, &analysis, args, MachineConfig::default()).unwrap();
        p
    }

    /// Independent-iteration array sum into distinct slots (DOALL-able,
    /// modulo the reduction).
    fn doall_module(n: i64) -> Module {
        let mut m = Module::new("doall");
        let g = m.add_global(Global::zeroed("a", n as u64 + 1));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let nn = fb.const_i64(n);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let base = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let addr = fb.gep(base, i, 8, 0);
        let v = fb.mul(i, i);
        fb.store(v, addr);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(zero));
        m.add_function(fb.finish().unwrap());
        m
    }

    /// Loop carrying a RAW through one memory cell (frequent memory LCD).
    fn serial_mem_module(n: i64) -> Module {
        let mut m = Module::new("serial_mem");
        let g = m.add_global(Global::zeroed("cell", 1));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let nn = fb.const_i64(n);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let cell = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let v = fb.load(Type::I64, cell);
        let v2 = fb.add(v, one);
        fb.store(v2, cell);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        let r = fb.load(Type::I64, cell);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        m
    }

    #[test]
    fn doall_loop_has_no_conflicts() {
        let m = doall_module(50);
        let p = profile(&m, &[]);
        let instances: Vec<_> = p.loop_instances().collect();
        assert_eq!(instances.len(), 1);
        let (_, region, inst) = instances[0];
        // 50 body iterations + the exiting header check.
        assert_eq!(inst.iterations(), 51);
        assert!(inst.mem_conflict_iters.is_empty());
        assert_eq!(inst.call_class, CallClass::NoCalls);
        assert!(region.serial_cost() > 0);
        // Only the computable counter phi: nothing traced.
        assert!(p.loop_meta[inst.meta].traced_phis.is_empty());
        assert_eq!(p.loop_meta[inst.meta].computable_phis, 1);
    }

    #[test]
    fn memory_lcd_detected_every_iteration() {
        let m = serial_mem_module(40);
        let p = profile(&m, &[]);
        let (_, _, inst) = p.loop_instances().next().unwrap();
        // Every iteration from 1 loads what iteration k-1 stored.
        assert_eq!(inst.mem_conflict_iters.len(), 39);
        assert_eq!(inst.mem_conflict_iters[0], 1);
        assert!(inst.mem_edges >= 39);
    }

    #[test]
    fn conflict_distances_and_func_names_are_captured() {
        let before = lp_obs::registry().hist(Hist::ConflictDistance).count;
        let m = serial_mem_module(40);
        let p = profile(&m, &[]);
        assert_eq!(p.func_names, vec!["main".to_string()]);
        // Every iteration 1..40 consumes the previous store: 39 edges at
        // iteration distance 1 merged into the global histogram. Other
        // tests in this binary may add samples too, so bound from below.
        let after = lp_obs::registry().hist(Hist::ConflictDistance).count;
        assert!(after >= before + 39, "before={before} after={after}");
    }

    #[test]
    fn region_tree_is_closed_and_ordered() {
        let m = serial_mem_module(10);
        let p = profile(&m, &[]);
        assert_eq!(p.region(p.root()).start, 0);
        assert_eq!(p.region(p.root()).end, p.total_cost);
        for r in &p.regions {
            assert!(r.start <= r.end);
            for &c in &r.children {
                let child = p.region(c);
                assert!(child.start >= r.start && child.end <= r.end);
            }
        }
    }
}
