//! The profiler: Loopapalooza's run-time component.
//!
//! [`Profiler`] implements [`lp_interp::EventSink`] and reconstructs, from
//! the instrumentation call-back stream, everything §III-B needs:
//!
//! - the dynamic region tree (function activations and loop instances)
//!   with iteration start stamps derived from header-block entries;
//! - cross-iteration memory RAW conflicts via per-instance last-writer
//!   conflict tracking, with the cactus-stack filter of §II-E (accesses
//!   to frames created during the current iteration are iteration-local
//!   and cannot conflict);
//! - register-LCD value streams fed through the hybrid value predictor,
//!   recording mispredicted iterations (`dep2`) and maximum producer
//!   offsets (`dep1` HELIX sync deltas);
//! - the worst dynamic call class per loop instance (`fn0..fn3` gate).
//!
//! # Hot-path layout
//!
//! Every load/store event consults last-writer state, and every block
//! entry consults the loop tables — so neither may hash (DESIGN.md §10).
//! Last-writer state lives in **one run-global shadow memory**
//! ([`ShadowTable`]) stamping each word with its last store's *absolute*
//! time: a store writes one stamp no matter how deep the loop nest, a
//! load compares that stamp against each level's instance/iteration start
//! (two compares; iteration numbers are re-derived by binary search only
//! on the rare conflict path), and stale stamps die by time comparison,
//! so loop entry invalidates nothing. The per-`(func, value)` /
//! per-`(func, block)` side tables are interned into dense vectors indexed
//! directly by ids, with `u32::MAX` as the "not tracked" sentinel.

use crate::profile::{
    CallClass, LcdInstance, LoopInstance, LoopMeta, MetaIndex, Profile, Region, RegionId,
    RegionKind,
};
use crate::witness::{WitnessReport, WitnessState};
use lp_analysis::{LcdClass, LoopId, ModuleAnalysis, Purity};
use lp_interp::{
    BatchKind, BlockBatch, EventSink, Exec, ExecUnit, Fidelity, MachineConfig, MemStats,
    MeteredSink, RunResult, Value, STACK_BASE,
};
use lp_ir::fx::FxHashMap;
use lp_ir::{BlockId, Builtin, FuncId, Inst, Module, ValueId, ValueKind};
use lp_obs::{span, Counter, Hist, Histogram, PredictorKind};
use lp_predict::HybridPredictor;

/// Sentinel for "no entry" in the dense interning tables.
const NONE: u32 = u32::MAX;

// Shadow-memory geometry: one stamp per 8-byte word, 512 words (4 KiB of
// address space) per page, same two-level directory shape as the
// interpreter's memory.
const SHADOW_PAGE_WORDS: usize = 512;
const SHADOW_WORD_BITS: u64 = 3;
const SHADOW_PAGE_BITS: u64 = 9;
const SHADOW_PAGE_MASK: u64 = (SHADOW_PAGE_WORDS as u64) - 1;
const SHADOW_L2_LEN: usize = 1024;
const SHADOW_L2_BITS: u64 = 10;
const SHADOW_L2_MASK: u64 = (SHADOW_L2_LEN as u64) - 1;
const SHADOW_DIRECT_LIMIT: u64 = (SHADOW_L2_LEN as u64) * (SHADOW_L2_LEN as u64);
const SHADOW_CACHE_WAYS: usize = 8;

/// Last-writer stamp for one 8-byte word: the absolute time of the most
/// recent store and the push time of the stack frame it wrote through
/// (0 for non-stack stores). `t == u64::MAX` means "never written" —
/// always time-excluded, since real stamps satisfy `t <= now`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Stamp {
    t: u64,
    push: u64,
}

const EMPTY_STAMP: Stamp = Stamp {
    t: u64::MAX,
    push: 0,
};

/// Run-global last-writer shadow memory.
///
/// Replaces the per-instance `HashMap<addr, (iter, rel)>`: one table
/// serves every active loop level, because a stamp records the *absolute*
/// store time — each level decides by comparing against its own instance
/// and iteration start stamps whether the store is a cross-iteration
/// producer, so no per-level state and no invalidation are needed at all.
/// Address resolution reuses the interpreter memory's two-level page
/// directory plus a small direct-mapped page cache, so the common case (a
/// handful of live pages, as in strided array walks) touches no directory
/// at all.
#[derive(Debug)]
struct ShadowTable {
    /// Stamp-page arena; directory entries hold indexes into it.
    pages: Vec<Box<[Stamp; SHADOW_PAGE_WORDS]>>,
    /// First directory level, densely covering pages `0..SHADOW_DIRECT_LIMIT`.
    l1: Vec<Option<Box<[u32; SHADOW_L2_LEN]>>>,
    /// Fallback for far pages (synthetic function-pointer addresses).
    far: FxHashMap<u64, u32>,
    /// Direct-mapped page cache, indexed by `page % ways`. A single entry
    /// thrashes on strided multi-array access (e.g. matmul rows); a few
    /// ways keep every live page of a typical inner loop resident.
    cache_page: [u64; SHADOW_CACHE_WAYS],
    cache_idx: [u32; SHADOW_CACHE_WAYS],
    hits: u64,
    misses: u64,
}

impl ShadowTable {
    fn new() -> ShadowTable {
        let mut l1 = Vec::new();
        l1.resize_with(SHADOW_L2_LEN, || None);
        ShadowTable {
            pages: Vec::new(),
            l1,
            far: FxHashMap::default(),
            cache_page: [u64::MAX; SHADOW_CACHE_WAYS],
            cache_idx: [NONE; SHADOW_CACHE_WAYS],
            hits: 0,
            misses: 0,
        }
    }

    /// Resolves a stamp page to its arena index, if allocated.
    #[inline]
    fn lookup(&mut self, page: u64) -> Option<u32> {
        let way = (page as usize) & (SHADOW_CACHE_WAYS - 1);
        if page == self.cache_page[way] {
            self.hits += 1;
            return Some(self.cache_idx[way]);
        }
        self.misses += 1;
        let idx = if page < SHADOW_DIRECT_LIMIT {
            match &self.l1[(page >> SHADOW_L2_BITS) as usize] {
                Some(l2) => l2[(page & SHADOW_L2_MASK) as usize],
                None => NONE,
            }
        } else {
            self.far.get(&page).copied().unwrap_or(NONE)
        };
        if idx == NONE {
            return None;
        }
        self.cache_page[way] = page;
        self.cache_idx[way] = idx;
        Some(idx)
    }

    /// As [`ShadowTable::lookup`], allocating the page if absent.
    #[inline]
    fn lookup_or_alloc(&mut self, page: u64) -> u32 {
        if let Some(idx) = self.lookup(page) {
            return idx;
        }
        let idx = self.pages.len() as u32;
        self.pages.push(Box::new([EMPTY_STAMP; SHADOW_PAGE_WORDS]));
        if page < SHADOW_DIRECT_LIMIT {
            let l2 = self.l1[(page >> SHADOW_L2_BITS) as usize]
                .get_or_insert_with(|| Box::new([NONE; SHADOW_L2_LEN]));
            l2[(page & SHADOW_L2_MASK) as usize] = idx;
        } else {
            self.far.insert(page, idx);
        }
        let way = (page as usize) & (SHADOW_CACHE_WAYS - 1);
        self.cache_page[way] = page;
        self.cache_idx[way] = idx;
        idx
    }

    /// Records `addr`'s last writer: store time `t`, owning-frame push
    /// time `push`.
    #[inline]
    fn record_store(&mut self, addr: u64, t: u64, push: u64) {
        let word = addr >> SHADOW_WORD_BITS;
        let idx = self.lookup_or_alloc(word >> SHADOW_PAGE_BITS);
        self.pages[idx as usize][(word & SHADOW_PAGE_MASK) as usize] = Stamp { t, push };
    }

    /// The last-writer stamp of `addr` ([`EMPTY_STAMP`] if never written).
    #[inline]
    fn last_writer(&mut self, addr: u64) -> Stamp {
        let word = addr >> SHADOW_WORD_BITS;
        match self.lookup(word >> SHADOW_PAGE_BITS) {
            Some(idx) => self.pages[idx as usize][(word & SHADOW_PAGE_MASK) as usize],
            None => EMPTY_STAMP,
        }
    }
}

/// An actively executing loop instance (moved into the region tree when
/// the loop exits). Last-writer state lives in the run-global
/// [`ShadowTable`]; this records only per-level iteration stamps and
/// conflict tallies.
#[derive(Debug)]
struct ActiveLoop {
    region: RegionId,
    func: u32,
    loop_id: u32,
    /// Index into [`Profiler::loop_meta`] (and `loop_blocks`).
    meta: usize,
    frame_depth: u32,
    cur_iter: u32,
    iter_start: u64,
    iter_starts: Vec<u64>,
    /// Conflicting iterations in ascending order (pushes arrive with
    /// nondecreasing `cur_iter`, deduplicated against the last element).
    conflicts: Vec<u32>,
    max_skew: u64,
    max_producer_rel: u64,
    min_consumer_rel: u64,
    edges: u64,
    lcds: Vec<LcdInstance>,
    call_class: CallClass,
}

#[derive(Debug, Clone, Copy)]
struct FrameRec {
    base: u64,
    push_cost: u64,
}

/// Synthetic address standing in for the architectural stack pointer when
/// the cactus-stack assumption is disabled (kept out of the stack region
/// so the frame filter never hides it).
const SP_HAZARD_ADDR: u64 = crate::profile_sp_hazard_addr();

/// Profiler behaviour knobs (ablations).
#[derive(Debug, Clone, Copy)]
pub struct ProfilerOptions {
    /// Apply the cactus-stack filter of §II-E: accesses to frames created
    /// during the current iteration are iteration-local and generate no
    /// conflicts. Disabling it models a conventional sequential call
    /// stack, where reused frame addresses serialize loops with calls.
    pub cactus_stack: bool,
}

impl Default for ProfilerOptions {
    fn default() -> ProfilerOptions {
        ProfilerOptions { cactus_stack: true }
    }
}

/// The run-time component: consumes interpreter events, produces a
/// [`Profile`].
#[derive(Debug)]
pub struct Profiler<'a> {
    analysis: &'a ModuleAnalysis,
    program: String,
    /// Per function, per block: the loop id this block heads, or [`NONE`].
    header_loop: Vec<Vec<u32>>,
    /// Per function, per value: index into `traced_slots`, or [`NONE`].
    traced: Vec<Vec<u32>>,
    /// `(loop id, traced-lcd index)` per traced phi; parallel to
    /// `predictors`.
    traced_slots: Vec<(u32, u32)>,
    /// Per function, per value: index into `watch_lists`, or [`NONE`].
    watched: Vec<Vec<u32>>,
    /// The traced LCDs each watched latch value feeds.
    watch_lists: Vec<Vec<(u32, u32)>>,
    /// Per function, per loop id: index into `loop_meta`, or [`NONE`].
    meta_of: Vec<Vec<u32>>,
    /// Per meta index, per block: loop membership bitmap.
    loop_blocks: Vec<Vec<bool>>,
    loop_meta: Vec<LoopMeta>,
    // Dynamic state.
    now: u64,
    regions: Vec<Region>,
    region_stack: Vec<RegionId>,
    loop_stack: Vec<ActiveLoop>,
    /// Run-global last-writer shadow memory, shared by all loop levels.
    shadow: ShadowTable,
    /// Optional independence-witness engine (replay certification);
    /// boxed to keep the common no-witness profiler lean.
    witness: Option<Box<WitnessState>>,
    frames: Vec<FrameRec>,
    call_depth: u32,
    /// One predictor per traced phi, parallel to `traced_slots`.
    predictors: Vec<HybridPredictor>,
    options: ProfilerOptions,
    cactus_filter_hits: u64,
    /// Interpreter memory fast-path stats, delivered at end of run.
    mem_stats: MemStats,
    /// Function names by [`FuncId`] (for the collapsed-stack export).
    func_names: Vec<String>,
    /// Iteration distance of each cross-iteration RAW edge, accumulated
    /// lock-free here and merged into the global registry at flush.
    conflict_dists: Histogram,
}

impl<'a> Profiler<'a> {
    /// Prepares the profiler for `module` using its compile-time analysis.
    #[must_use]
    pub fn new(module: &Module, analysis: &'a ModuleAnalysis) -> Profiler<'a> {
        Profiler::with_options(module, analysis, ProfilerOptions::default())
    }

    /// As [`Profiler::new`] with explicit behaviour knobs.
    #[must_use]
    pub fn with_options(
        module: &Module,
        analysis: &'a ModuleAnalysis,
        options: ProfilerOptions,
    ) -> Profiler<'a> {
        let n_funcs = module.iter_functions().count();
        let mut header_loop: Vec<Vec<u32>> = vec![Vec::new(); n_funcs];
        let mut traced: Vec<Vec<u32>> = vec![Vec::new(); n_funcs];
        let mut watched: Vec<Vec<u32>> = vec![Vec::new(); n_funcs];
        let mut meta_of: Vec<Vec<u32>> = vec![Vec::new(); n_funcs];
        let mut traced_slots: Vec<(u32, u32)> = Vec::new();
        let mut watch_lists: Vec<Vec<(u32, u32)>> = Vec::new();
        let mut loop_blocks: Vec<Vec<bool>> = Vec::new();
        let mut loop_meta = Vec::new();

        for (fid, func) in module.iter_functions() {
            let fa = analysis.function(fid);
            let fi = fid.index();
            if fa.lcds.is_empty() {
                continue;
            }
            header_loop[fi] = vec![NONE; func.blocks.len()];
            meta_of[fi] = vec![NONE; fa.lcds.len()];
            for (lid, lp) in fa.loops.iter() {
                header_loop[fi][lp.header.index()] = lid.0;
                let lcds = &fa.lcds[lid.index()];
                let traced_phis: Vec<(ValueId, LcdClass)> = lcds
                    .phis
                    .iter()
                    .filter(|(_, c)| !c.is_computable())
                    .map(|&(v, c)| (v, c))
                    .collect();
                let computable = lcds.phis.len() - traced_phis.len();
                let meta_idx = loop_meta.len();
                meta_of[fi][lid.index()] = meta_idx as u32;
                let mut membership = vec![false; func.blocks.len()];
                for &b in &lp.blocks {
                    membership[b.index()] = true;
                }
                loop_blocks.push(membership);
                // Register traced phis and their latch producers.
                if lp.latches.len() == 1 {
                    let latch = lp.latches[0];
                    for (idx, (phi, _)) in traced_phis.iter().enumerate() {
                        if traced[fi].is_empty() {
                            traced[fi] = vec![NONE; func.values.len()];
                        }
                        traced[fi][phi.index()] = traced_slots.len() as u32;
                        traced_slots.push((lid.0, idx as u32));
                        if let ValueKind::Inst(iid) = func.value(*phi) {
                            if let Inst::Phi { incomings, .. } = &func.inst(*iid).inst {
                                if let Some((_, update)) =
                                    incomings.iter().find(|(b, _)| *b == latch)
                                {
                                    // Only instruction results have def
                                    // events; invariant updates produce at
                                    // offset 0 anyway.
                                    if matches!(func.value(*update), ValueKind::Inst(_)) {
                                        if watched[fi].is_empty() {
                                            watched[fi] = vec![NONE; func.values.len()];
                                        }
                                        let slot = watched[fi][update.index()];
                                        if slot == NONE {
                                            watched[fi][update.index()] = watch_lists.len() as u32;
                                            watch_lists.push(vec![(lid.0, idx as u32)]);
                                        } else {
                                            watch_lists[slot as usize].push((lid.0, idx as u32));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                loop_meta.push(LoopMeta {
                    func: fid,
                    loop_id: lid,
                    func_name: func.name.clone(),
                    header: lp.header,
                    depth: lp.depth,
                    traced_phis,
                    computable_phis: computable as u32,
                });
            }
        }

        let predictors = std::iter::repeat_with(HybridPredictor::default)
            .take(traced_slots.len())
            .collect();

        Profiler {
            analysis,
            program: module.name.clone(),
            func_names: module
                .iter_functions()
                .map(|(_, f)| f.name.clone())
                .collect(),
            conflict_dists: Histogram::default(),
            header_loop,
            traced,
            traced_slots,
            watched,
            watch_lists,
            meta_of,
            loop_blocks,
            loop_meta,
            now: 0,
            regions: Vec::new(),
            region_stack: Vec::new(),
            loop_stack: Vec::new(),
            shadow: ShadowTable::new(),
            witness: None,
            frames: Vec::new(),
            call_depth: 0,
            predictors,
            options,
            cactus_filter_hits: 0,
            mem_stats: MemStats::default(),
        }
    }

    /// Arms the independence-witness engine for `targets`; `exempt`
    /// lists word addresses excluded from the disjointness check
    /// (designated reduction slots — normally empty).
    pub fn enable_witness(&mut self, targets: &[(FuncId, LoopId)], exempt: Vec<u64>) {
        self.witness = Some(Box::new(WitnessState::new(targets, exempt)));
    }

    /// The `(func, value)` pairs the machine must report definitions for.
    #[must_use]
    pub fn watched_values(&self) -> Vec<(FuncId, ValueId)> {
        let mut out = Vec::new();
        for (f, row) in self.watched.iter().enumerate() {
            for (v, &slot) in row.iter().enumerate() {
                if slot != NONE {
                    out.push((FuncId(f as u32), ValueId(v as u32)));
                }
            }
        }
        out
    }

    fn push_region(&mut self, kind: RegionKind) -> RegionId {
        let parent = self.region_stack.last().copied();
        let parent_iter = match (parent, self.loop_stack.last()) {
            (Some(p), Some(al)) if al.region == p => al.cur_iter,
            _ => 0,
        };
        let rid = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            parent,
            parent_iter,
            start: self.now,
            end: self.now,
            kind,
            children: Vec::new(),
        });
        if let Some(p) = parent {
            self.regions[p.index()].children.push(rid);
        }
        self.region_stack.push(rid);
        rid
    }

    fn close_top_loop(&mut self, stamp: u64) {
        let al = self.loop_stack.pop().expect("active loop to close");
        if let Some(wit) = self.witness.as_deref_mut() {
            wit.deactivate(self.loop_stack.len(), al.cur_iter);
        }
        let rid = self
            .region_stack
            .pop()
            .expect("loop region on region stack");
        debug_assert_eq!(rid, al.region, "region stack out of sync");
        let region = &mut self.regions[rid.index()];
        region.end = stamp;
        region.kind = RegionKind::Loop(LoopInstance {
            meta: al.meta,
            iter_starts: al.iter_starts,
            mem_conflict_iters: al.conflicts,
            mem_max_skew: al.max_skew,
            mem_max_producer_rel: al.max_producer_rel,
            mem_min_consumer_rel: al.min_consumer_rel,
            mem_edges: al.edges,
            lcds: al.lcds,
            call_class: al.call_class,
        });
    }

    fn bump_call_class(&mut self, class: CallClass) {
        for al in &mut self.loop_stack {
            if class > al.call_class {
                al.call_class = class;
            }
        }
    }

    /// The push time of the stack frame owning `addr` (0 for non-stack
    /// addresses or when the cactus-stack assumption is off). Frames have
    /// strictly increasing bases, so the owner is the last frame with
    /// `base <= addr`.
    fn owner_frame_push(&self, addr: u64) -> u64 {
        if !self.options.cactus_stack || addr < STACK_BASE {
            return 0;
        }
        let i = self.frames.partition_point(|fr| fr.base <= addr);
        if i == 0 {
            0
        } else {
            self.frames[i - 1].push_cost
        }
    }

    /// Feeds one access to every active witness instance, applying the
    /// exempt-address and cactus-stack (iteration-local frame) rules per
    /// level.
    fn witness_access(&mut self, addr: u64, is_store: bool) {
        let push = self.owner_frame_push(addr);
        let Some(wit) = self.witness.as_deref_mut() else {
            return;
        };
        if wit.is_exempt(addr) {
            return;
        }
        for aw in wit.active_mut() {
            let al = &self.loop_stack[aw.depth()];
            if push > 0 && push >= al.iter_start {
                aw.note_exempt();
                continue;
            }
            aw.observe(addr, al.cur_iter, is_store);
        }
    }

    fn track_access(&mut self, addr: u64, is_store: bool, now: u64) {
        self.now = self.now.max(now);
        if self.witness.as_ref().is_some_and(|w| w.any_active()) {
            self.witness_access(addr, is_store);
        }
        if is_store {
            // A store with no loop active can never become a
            // cross-iteration producer: every later instance's first
            // iteration starts after it, so the `w.t < iter_starts[0]`
            // exclusion would always discard the stamp, and an unstamped
            // word takes the same EMPTY fast path. Skipping the stamp
            // avoids paging in shadow memory for init-phase stores and
            // keeps the shadow cache's reference stream (loop traffic
            // only) distinct from the interpreter page cache's (every
            // access).
            if self.loop_stack.is_empty() {
                return;
            }
            // One stamp serves every loop level: each level re-derives
            // iteration numbers from the absolute time on the (rare)
            // conflict path.
            let push = self.owner_frame_push(addr);
            self.shadow.record_store(addr, now, push);
            return;
        }
        let Some(top) = self.loop_stack.last() else {
            return;
        };
        let w = self.shadow.last_writer(addr);
        // Fast path: last written during the innermost loop's current
        // iteration (or never — EMPTY_STAMP's `t` is `u64::MAX`). Inner
        // iteration starts bound all outer ones, so no level conflicts.
        if w.t >= top.iter_start {
            return;
        }
        // Second fast path: a stamp from before the *outermost* active
        // instance began is excluded at every level by `conflict_scan`'s
        // first test (before any tally), so the whole walk is a no-op.
        // Init-phase producers — arrays filled by an earlier loop — land
        // here on every load of the consuming loop nest.
        if w.t < self.loop_stack[0].iter_starts[0] {
            return;
        }
        self.conflict_scan(addr, w, now);
    }

    /// The load slow path, shared verbatim by the per-instruction stream
    /// and the batched decode loop: walks every active loop level and
    /// records the cross-iteration RAW conflicts `w` produces for the
    /// load of `addr` at `now`. Only reached when the last-writer stamp
    /// predates the innermost current iteration — rare by construction.
    #[cold]
    fn conflict_scan(&mut self, addr: u64, w: Stamp, now: u64) {
        let load_push = self.owner_frame_push(addr);
        for al in &mut self.loop_stack {
            // Stamp from before this instance began: not a producer here.
            // (This is what makes stale stamps harmless without any
            // per-instance invalidation.)
            if w.t < al.iter_starts[0] || w.t >= al.iter_start {
                continue;
            }
            // Cactus-stack filter, paper §II-E: a frame created during
            // this level's current iteration is iteration-local — both
            // the consumer's frame (checked against the load) and the
            // producer's frame (checked against the store's own
            // iteration) generate no cross-iteration conflict.
            if load_push > 0 && load_push >= al.iter_start {
                self.cactus_filter_hits += 1;
                continue;
            }
            // 0-based iteration containing the store, by binary search on
            // this level's iteration start stamps.
            let w_iter = al.iter_starts.partition_point(|s| *s <= w.t) as u32 - 1;
            let w_iter_start = al.iter_starts[w_iter as usize];
            if w.push > 0 && w.push >= w_iter_start {
                self.cactus_filter_hits += 1;
                continue;
            }
            if al.conflicts.last() != Some(&al.cur_iter) {
                al.conflicts.push(al.cur_iter);
            }
            al.edges += 1;
            let rel = now.saturating_sub(al.iter_start);
            let w_rel = w.t - w_iter_start;
            let span = u64::from(al.cur_iter - w_iter);
            self.conflict_dists.record(span);
            let skew = w_rel.saturating_sub(rel) / span;
            if skew > al.max_skew {
                al.max_skew = skew;
            }
            al.max_producer_rel = al.max_producer_rel.max(w_rel);
            al.min_consumer_rel = al.min_consumer_rel.min(rel);
        }
    }

    /// Publishes this run's tallies into the process-wide [`lp_obs`]
    /// counter bank: regions/loops built, RAW conflict edges, cactus-stack
    /// filter hits, per-iteration-count histogram samples, memory and
    /// shadow last-page cache hit rates, and per-kind value-predictor
    /// hit/miss totals.
    fn flush_counters(&self) {
        let c = lp_obs::counters();
        c.add(Counter::RegionsCreated, self.regions.len() as u64);
        let mut edges = 0u64;
        let mut loops = 0u64;
        for r in &self.regions {
            if let RegionKind::Loop(inst) = &r.kind {
                loops += 1;
                edges += inst.mem_edges;
                lp_obs::record_hist(Hist::LoopIterations, inst.iterations() as u64);
            }
        }
        c.add(Counter::LoopInstances, loops);
        c.add(Counter::RawConflicts, edges);
        c.add(Counter::CactusFilterHits, self.cactus_filter_hits);
        c.add(Counter::MemPageCacheHits, self.mem_stats.page_cache_hits);
        c.add(
            Counter::MemPageCacheMisses,
            self.mem_stats.page_cache_misses,
        );
        c.add(Counter::ShadowPageCacheHits, self.shadow.hits);
        c.add(Counter::ShadowPageCacheMisses, self.shadow.misses);
        lp_obs::merge_hist(Hist::ConflictDistance, &self.conflict_dists);
        let components = [
            PredictorKind::LastValue,
            PredictorKind::Stride,
            PredictorKind::TwoDeltaStride,
            PredictorKind::Fcm,
        ];
        for pred in &self.predictors {
            let s = pred.stats();
            c.add(Counter::PredictorHit(PredictorKind::Hybrid), s.correct);
            c.add(
                Counter::PredictorMiss(PredictorKind::Hybrid),
                s.observed - s.correct,
            );
            for (kind, cs) in components.iter().zip(pred.component_stats()) {
                c.add(Counter::PredictorHit(*kind), cs.correct);
                c.add(Counter::PredictorMiss(*kind), cs.observed - cs.correct);
            }
        }
    }

    /// As [`Profiler::finish`], additionally returning the gathered
    /// independence witnesses (empty report when
    /// [`Profiler::enable_witness`] was never called).
    #[must_use]
    pub fn finish_with_witness(mut self) -> (Profile, WitnessReport) {
        // Close still-open loops first so their witnesses finalize, then
        // detach the engine before the ordinary finish path.
        let stamp = self.now;
        while !self.loop_stack.is_empty() {
            self.close_top_loop(stamp);
        }
        let report = self
            .witness
            .take()
            .map_or_else(WitnessReport::default, |w| w.into_report());
        (self.finish(), report)
    }

    /// Finalizes the profile. Call after the machine run completes.
    ///
    /// # Panics
    /// Panics if regions are still open (the run did not complete).
    #[must_use]
    pub fn finish(mut self) -> Profile {
        // A trapped/aborted run may leave regions open; close them at the
        // final stamp so partial profiles remain well-formed.
        let stamp = self.now;
        while !self.loop_stack.is_empty() {
            self.close_top_loop(stamp);
        }
        while let Some(rid) = self.region_stack.pop() {
            self.regions[rid.index()].end = stamp;
        }
        self.flush_counters();
        Profile {
            program: self.program,
            total_cost: self.now,
            regions: self.regions,
            meta_index: MetaIndex::from_meta(&self.loop_meta),
            loop_meta: self.loop_meta,
            func_names: self.func_names,
        }
    }
}

impl Profiler<'_> {
    /// The block-entry consume path, shared by the per-instruction
    /// callback and the batch decoder. Returns whether loop or witness
    /// state (stack membership, iteration starts, activation) may have
    /// changed — the decoder refreshes its per-block hoists only then,
    /// so mid-body block entries (the majority) stay branch-cheap.
    #[inline]
    fn consume_block_entry(&mut self, func: FuncId, block: BlockId, now: u64) -> bool {
        let stamp = now;
        self.now = self.now.max(now);
        let mut changed = false;
        // Close loops (of this frame) the control flow has left.
        while let Some(top) = self.loop_stack.last() {
            if top.frame_depth != self.call_depth || top.func != func.0 {
                break;
            }
            if self.loop_blocks[top.meta][block.index()] {
                break;
            }
            self.close_top_loop(stamp);
            changed = true;
        }
        // Header entry: new iteration of the top instance, or a new
        // instance.
        let lid = self.header_loop[func.index()]
            .get(block.index())
            .copied()
            .unwrap_or(NONE);
        if lid != NONE {
            changed = true;
            let is_top = self.loop_stack.last().is_some_and(|t| {
                t.frame_depth == self.call_depth && t.func == func.0 && t.loop_id == lid
            });
            if is_top {
                let t = self.loop_stack.last_mut().expect("checked above");
                t.cur_iter += 1;
                t.iter_start = stamp;
                t.iter_starts.push(stamp);
            } else {
                let meta = self.meta_of[func.index()][lid as usize] as usize;
                let n_lcds = self.loop_meta[meta].traced_phis.len();
                let region = self.push_region(RegionKind::Loop(LoopInstance {
                    meta,
                    iter_starts: Vec::new(),
                    mem_conflict_iters: Vec::new(),
                    mem_max_skew: 0,
                    mem_max_producer_rel: 0,
                    mem_min_consumer_rel: u64::MAX,
                    mem_edges: 0,
                    lcds: Vec::new(),
                    call_class: CallClass::NoCalls,
                }));
                self.regions[region.index()].start = stamp;
                self.loop_stack.push(ActiveLoop {
                    region,
                    func: func.0,
                    loop_id: lid,
                    meta,
                    frame_depth: self.call_depth,
                    cur_iter: 0,
                    iter_start: stamp,
                    iter_starts: vec![stamp],
                    conflicts: Vec::new(),
                    max_skew: 0,
                    max_producer_rel: 0,
                    min_consumer_rel: u64::MAX,
                    edges: 0,
                    lcds: vec![LcdInstance::default(); n_lcds],
                    call_class: CallClass::NoCalls,
                });
                if let Some(wit) = self.witness.as_deref_mut() {
                    if wit.is_target(func.0, lid) {
                        wit.activate(self.loop_stack.len() - 1, func.0, lid);
                    }
                }
            }
        }
        changed
    }
}

impl EventSink for Profiler<'_> {
    fn block_entered(&mut self, func: FuncId, block: BlockId, _cost: u64, now: u64) {
        self.consume_block_entry(func, block, now);
    }

    fn phi_resolved(
        &mut self,
        func: FuncId,
        _block: BlockId,
        phi: ValueId,
        value: Value,
        _now: u64,
    ) {
        let slot = self.traced[func.index()]
            .get(phi.index())
            .copied()
            .unwrap_or(NONE);
        if slot == NONE {
            return;
        }
        let (lid, idx) = self.traced_slots[slot as usize];
        if let Some(al) = self
            .loop_stack
            .iter_mut()
            .rev()
            .find(|a| a.func == func.0 && a.loop_id == lid)
        {
            let pred = &mut self.predictors[slot as usize];
            let hit = pred.observe(value.fingerprint());
            let lcd = &mut al.lcds[idx as usize];
            lcd.observed += 1;
            if hit {
                lcd.predicted += 1;
            } else if al.cur_iter >= 1 {
                // Iteration 0 consumes the loop-invariant initial
                // value — not a cross-iteration dependency.
                lcd.mispredict_iters.push(al.cur_iter);
            }
        }
    }

    fn load(&mut self, addr: u64, now: u64) {
        self.track_access(addr, false, now);
    }

    fn store(&mut self, addr: u64, now: u64) {
        self.track_access(addr, true, now);
    }

    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        self.now = self.now.max(now);
        if !self.options.cactus_stack && !self.loop_stack.is_empty() {
            // Conventional sequential stack: the stack-pointer update is
            // a read-modify-write in strict program order (paper §II-E) —
            // a frequent memory LCD for every loop containing calls.
            self.track_access(SP_HAZARD_ADDR, false, now);
            self.track_access(SP_HAZARD_ADDR, true, now);
        }
        if !self.loop_stack.is_empty() {
            let class = match self.analysis.callgraph.purity(func) {
                Purity::Pure => CallClass::PureCalls,
                Purity::Impure => CallClass::InstrumentedCalls,
            };
            self.bump_call_class(class);
        }
        self.call_depth += 1;
        self.frames.push(FrameRec {
            base: frame_base,
            push_cost: now,
        });
        self.push_region(RegionKind::Call { func });
    }

    fn func_exited(&mut self, _func: FuncId, now: u64) {
        self.now = self.now.max(now);
        let stamp = now;
        while self
            .loop_stack
            .last()
            .is_some_and(|t| t.frame_depth == self.call_depth)
        {
            self.close_top_loop(stamp);
        }
        let rid = self.region_stack.pop().expect("call region to close");
        self.regions[rid.index()].end = stamp;
        self.frames.pop();
        self.call_depth -= 1;
    }

    fn builtin_called(&mut self, _caller: FuncId, builtin: Builtin, _now: u64) {
        let class = if builtin.is_pure() {
            CallClass::PureCalls
        } else if builtin.is_thread_safe() {
            CallClass::InstrumentedCalls
        } else {
            CallClass::UnsafeCalls
        };
        self.bump_call_class(class);
    }

    fn value_defined(&mut self, func: FuncId, value: ValueId, _val: Value, now: u64) {
        self.now = self.now.max(now);
        let slot = self.watched[func.index()]
            .get(value.index())
            .copied()
            .unwrap_or(NONE);
        if slot == NONE {
            return;
        }
        for k in 0..self.watch_lists[slot as usize].len() {
            let (lid, idx) = self.watch_lists[slot as usize][k];
            if let Some(al) = self
                .loop_stack
                .iter_mut()
                .rev()
                .find(|a| a.func == func.0 && a.loop_id == lid)
            {
                let rel = now.saturating_sub(al.iter_start);
                let lcd = &mut al.lcds[idx as usize];
                if rel > lcd.max_def_rel {
                    lcd.max_def_rel = rel;
                }
            }
        }
    }

    fn mem_stats(&mut self, stats: MemStats) {
        self.mem_stats = stats;
    }

    fn fidelity(&self) -> Fidelity {
        // Native batch consumer: the bytecode engine delivers one
        // [`BlockBatch`] per executed block instead of one virtual call
        // per event. The tree-walk engine ignores this and keeps the
        // per-instruction stream — both paths are pinned byte-identical
        // by the engine differential suite.
        Fidelity::Block
    }

    fn block_batch(&mut self, batch: &BlockBatch) {
        // The opening block-entry event first: it can open or close loop
        // regions and (de)activate witnesses, all of which the hoisted
        // per-block state below must reflect.
        if let Some(entry) = &batch.entry {
            self.block_entered(batch.func, batch.block, entry.cost, entry.now);
        }
        if batch.is_empty() {
            return;
        }
        // Per-block hoists — the work the per-instruction path repeats
        // for every event. Everything hoisted here is invariant between
        // block entries: `loop_stack` membership, `frames`, `call_depth`,
        // and the witness active set are only mutated at block and
        // function boundaries, never by the load/store/phi/def events
        // in between — so the hoists refresh only at in-stream `Enter`
        // markers, amortized over the whole multi-block batch.
        let func = batch.func;
        let mut cur_block = batch.block;
        let mut witness_active = self.witness.as_ref().is_some_and(|w| w.any_active());
        let mut in_loop = !self.loop_stack.is_empty();
        let mut top_iter_start = self.loop_stack.last().map_or(0, |t| t.iter_start);
        // Any stamp older than the *outermost* active instance start
        // makes `conflict_scan` a guaranteed no-op (its first per-level
        // test excludes every level before any tally is touched), so one
        // hoisted compare replaces the whole level walk for init-phase
        // producers — the dominant cold-load case in fill-then-consume
        // kernels.
        let mut scan_floor = self.loop_stack.first().map_or(0, |al| al.iter_starts[0]);
        // Batch-local same-page run caches: consecutive accesses to one
        // shadow page (strided array walks — the common case) resolve
        // the page once and index the stamp arena directly. Page arena
        // indices are stable (the arena only grows), and loads read the
        // arena in place, so an in-batch store to a load-cached page is
        // still observed; the caches stay valid across `Enter` markers
        // for the same reason. The one hazard — a load cached `NONE`
        // for a page a later in-batch store then allocates — is closed
        // by the store path syncing the load cache when it resolves the
        // same page, so next-iteration loads inside the batch see the
        // fresh producer stamp.
        let mut load_run_page = u64::MAX;
        let mut load_run_idx = NONE;
        let mut store_run_page = u64::MAX;
        let mut store_run_idx = NONE;
        // `self.now` is only read at batch boundaries (region pushes,
        // finish) and at block entries (which refresh it themselves), so
        // one deferred update per batch replaces one per event; `now`
        // stamps are nondecreasing within a batch, making the final
        // value identical.
        let mut batch_now = 0u64;
        let vals = batch.vals();
        let mut vi = 0usize;
        for (kind, payload, now) in batch.raw_events() {
            match kind {
                BatchKind::Load => {
                    batch_now = now;
                    if witness_active {
                        self.witness_access(payload, false);
                    }
                    if !in_loop {
                        continue;
                    }
                    let word = payload >> SHADOW_WORD_BITS;
                    let page = word >> SHADOW_PAGE_BITS;
                    if page != load_run_page {
                        load_run_page = page;
                        load_run_idx = self.shadow.lookup(page).unwrap_or(NONE);
                    }
                    let w = if load_run_idx == NONE {
                        EMPTY_STAMP
                    } else {
                        self.shadow.pages[load_run_idx as usize][(word & SHADOW_PAGE_MASK) as usize]
                    };
                    // Same fast paths as `track_access`: written during
                    // the innermost current iteration (or never), or so
                    // long ago the scan would exclude every level.
                    if w.t >= top_iter_start || w.t < scan_floor {
                        continue;
                    }
                    self.conflict_scan(payload, w, now);
                }
                BatchKind::Store => {
                    batch_now = now;
                    if witness_active {
                        self.witness_access(payload, true);
                    }
                    // As in `track_access`: a store with no loop active
                    // can never become a cross-iteration producer.
                    if !in_loop {
                        continue;
                    }
                    let push = self.owner_frame_push(payload);
                    let word = payload >> SHADOW_WORD_BITS;
                    let page = word >> SHADOW_PAGE_BITS;
                    if page != store_run_page {
                        store_run_page = page;
                        store_run_idx = self.shadow.lookup_or_alloc(page);
                        // A load may have cached this page as absent
                        // before the allocation; repoint it so in-batch
                        // consumers observe this store's stamp.
                        if load_run_page == page && load_run_idx == NONE {
                            load_run_idx = store_run_idx;
                        }
                    }
                    self.shadow.pages[store_run_idx as usize][(word & SHADOW_PAGE_MASK) as usize] =
                        Stamp { t: now, push };
                }
                BatchKind::Phi => {
                    let value = vals[vi];
                    vi += 1;
                    self.phi_resolved(func, cur_block, ValueId(payload as u32), value, now);
                }
                BatchKind::Def => {
                    let val = vals[vi];
                    vi += 1;
                    self.value_defined(func, ValueId(payload as u32), val, now);
                }
                BatchKind::Enter => {
                    cur_block = BlockId(payload as u32);
                    if self.consume_block_entry(func, cur_block, now) {
                        // The entry iterated, opened, or closed loops
                        // (and may have toggled witnesses): refresh the
                        // hoists. Mid-body entries change nothing.
                        witness_active = self.witness.as_ref().is_some_and(|w| w.any_active());
                        in_loop = !self.loop_stack.is_empty();
                        top_iter_start = self.loop_stack.last().map_or(0, |t| t.iter_start);
                        scan_floor = self.loop_stack.first().map_or(0, |al| al.iter_starts[0]);
                    }
                }
            }
        }
        self.now = self.now.max(batch_now);
    }
}

/// Runs `module` under the profiler and returns the profile plus the raw
/// run result.
///
/// # Errors
/// Propagates interpreter traps ([`lp_interp::InterpError`]).
pub fn profile_module(
    module: &Module,
    analysis: &ModuleAnalysis,
    args: &[Value],
    machine_config: MachineConfig,
) -> Result<(Profile, RunResult), lp_interp::InterpError> {
    profile_module_with(
        module,
        analysis,
        args,
        machine_config,
        ProfilerOptions::default(),
    )
}

/// As [`profile_module`] with explicit profiler knobs (ablations).
///
/// # Errors
/// Propagates interpreter traps.
pub fn profile_module_with(
    module: &Module,
    analysis: &ModuleAnalysis,
    args: &[Value],
    mut machine_config: MachineConfig,
    options: ProfilerOptions,
) -> Result<(Profile, RunResult), lp_interp::InterpError> {
    let _span = span!("profile");
    let reg = lp_obs::registry();
    let t0 = reg.now_ns();
    let mut profiler = Profiler::with_options(module, analysis, options);
    machine_config.watched_values = profiler.watched_values();
    let mut metered = MeteredSink::new(&mut profiler);
    // The engine comes in through the machine config: one `ExecUnit`
    // compiled here serves the whole profiling run.
    let unit = ExecUnit::with_engine(module, machine_config.engine);
    let result = Exec::new(&unit)
        .sink(&mut metered)
        .config(machine_config)
        .run(args)
        .map(|out| out.result);
    let counts = metered.counts();
    let c = lp_obs::counters();
    c.add(Counter::EventsConsumed, counts.total());
    c.add(Counter::BlocksEntered, counts.blocks);
    c.add(Counter::PhisResolved, counts.phis);
    c.add(Counter::Loads, counts.loads);
    c.add(Counter::Stores, counts.stores);
    c.add(Counter::FuncsEntered, counts.funcs);
    c.add(Counter::BuiltinCalls, counts.builtins);
    c.add(Counter::ValueDefs, counts.defs);
    c.add(Counter::ProfilesTaken, 1);
    lp_obs::record_hist(Hist::ProfileNanos, reg.now_ns().saturating_sub(t0));
    let result = result?;
    Ok((profiler.finish(), result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_analysis::analyze_module;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Global, IcmpPred, Module, Type};

    fn profile(m: &Module, args: &[Value]) -> Profile {
        let analysis = analyze_module(m);
        let (p, _) = profile_module(m, &analysis, args, MachineConfig::default()).unwrap();
        p
    }

    /// Independent-iteration array sum into distinct slots (DOALL-able,
    /// modulo the reduction).
    fn doall_module(n: i64) -> Module {
        let mut m = Module::new("doall");
        let g = m.add_global(Global::zeroed("a", n as u64 + 1));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let nn = fb.const_i64(n);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let base = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let addr = fb.gep(base, i, 8, 0);
        let v = fb.mul(i, i);
        fb.store(v, addr);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(zero));
        m.add_function(fb.finish().unwrap());
        m
    }

    /// Loop carrying a RAW through one memory cell (frequent memory LCD).
    fn serial_mem_module(n: i64) -> Module {
        let mut m = Module::new("serial_mem");
        let g = m.add_global(Global::zeroed("cell", 1));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let nn = fb.const_i64(n);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let cell = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let v = fb.load(Type::I64, cell);
        let v2 = fb.add(v, one);
        fb.store(v2, cell);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        let r = fb.load(Type::I64, cell);
        fb.ret(Some(r));
        m.add_function(fb.finish().unwrap());
        m
    }

    #[test]
    fn doall_loop_has_no_conflicts() {
        let m = doall_module(50);
        let p = profile(&m, &[]);
        let instances: Vec<_> = p.loop_instances().collect();
        assert_eq!(instances.len(), 1);
        let (_, region, inst) = instances[0];
        // 50 body iterations + the exiting header check.
        assert_eq!(inst.iterations(), 51);
        assert!(inst.mem_conflict_iters.is_empty());
        assert_eq!(inst.call_class, CallClass::NoCalls);
        assert!(region.serial_cost() > 0);
        // Only the computable counter phi: nothing traced.
        assert!(p.loop_meta[inst.meta].traced_phis.is_empty());
        assert_eq!(p.loop_meta[inst.meta].computable_phis, 1);
    }

    #[test]
    fn memory_lcd_detected_every_iteration() {
        let m = serial_mem_module(40);
        let p = profile(&m, &[]);
        let (_, _, inst) = p.loop_instances().next().unwrap();
        // Every iteration from 1 loads what iteration k-1 stored.
        assert_eq!(inst.mem_conflict_iters.len(), 39);
        assert_eq!(inst.mem_conflict_iters[0], 1);
        assert!(inst.mem_edges >= 39);
    }

    #[test]
    fn conflict_distances_and_func_names_are_captured() {
        let before = lp_obs::registry().hist(Hist::ConflictDistance).count;
        let m = serial_mem_module(40);
        let p = profile(&m, &[]);
        assert_eq!(p.func_names, vec!["main".to_string()]);
        // Every iteration 1..40 consumes the previous store: 39 edges at
        // iteration distance 1 merged into the global histogram. Other
        // tests in this binary may add samples too, so bound from below.
        let after = lp_obs::registry().hist(Hist::ConflictDistance).count;
        assert!(after >= before + 39, "before={before} after={after}");
    }

    #[test]
    fn shadow_and_mem_cache_counters_diverge_on_store_heavy_kernel() {
        // Regression: BENCH_profiler.json once reported byte-identical
        // `mem_page_cache_*` and `shadow_page_cache_*` pairs because the
        // shadow table replayed the interpreter's full reference stream,
        // init-phase stores included. The shadow cache must see loop
        // traffic only, so on a kernel dominated by outside-loop stores
        // the two pairs diverge.
        let n = 64i64;
        let mut m = Module::new("init_then_scan");
        let g = m.add_global(Global::zeroed("a", n as u64));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let nn = fb.const_i64(n);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let base = fb.global_addr(g);
        // Init phase: straight-line stores before any loop begins.
        for k in 0..n {
            let kk = fb.const_i64(k);
            let addr = fb.gep(base, kk, 8, 0);
            fb.store(kk, addr);
        }
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let addr = fb.gep(base, i, 8, 0);
        fb.load(Type::I64, addr);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(zero));
        m.add_function(fb.finish().unwrap());

        let analysis = analyze_module(&m);
        let mut profiler = Profiler::new(&m, &analysis);
        let cfg = MachineConfig {
            watched_values: profiler.watched_values(),
            ..Default::default()
        };
        let mut metered = MeteredSink::new(&mut profiler);
        let unit = ExecUnit::new(&m);
        Exec::new(&unit)
            .sink(&mut metered)
            .config(cfg)
            .run(&[])
            .unwrap();
        let _ = metered;

        let mem = (
            profiler.mem_stats.page_cache_hits,
            profiler.mem_stats.page_cache_misses,
        );
        let shadow = (profiler.shadow.hits, profiler.shadow.misses);
        assert!(mem.0 + mem.1 > 0, "interpreter cache saw no traffic");
        assert!(shadow.0 + shadow.1 > 0, "shadow cache saw no traffic");
        assert_ne!(mem, shadow, "cache counter pairs must diverge");
        assert!(
            shadow.0 + shadow.1 < mem.0 + mem.1,
            "shadow stream (loop-only) must be a strict subset: {shadow:?} vs {mem:?}"
        );
    }

    #[test]
    fn region_tree_is_closed_and_ordered() {
        let m = serial_mem_module(10);
        let p = profile(&m, &[]);
        assert_eq!(p.region(p.root()).start, 0);
        assert_eq!(p.region(p.root()).end, p.total_cost);
        for r in &p.regions {
            assert!(r.start <= r.end);
            for &c in &r.children {
                let child = p.region(c);
                assert!(child.start >= r.start && child.end <= r.end);
            }
        }
    }

    #[test]
    fn shadow_table_overwrites_and_reports_empty_words() {
        let mut t = ShadowTable::new();
        t.record_store(0x1000_0000, 3, 17);
        assert_eq!(t.last_writer(0x1000_0000), Stamp { t: 3, push: 17 });
        assert_eq!(t.last_writer(0x1000_0008), EMPTY_STAMP);
        // Later store to the same word replaces the stamp.
        t.record_store(0x1000_0000, 9, 0);
        assert_eq!(t.last_writer(0x1000_0000), Stamp { t: 9, push: 0 });
        // An empty stamp's time always fails `t < iter_start` exclusion.
        assert_eq!(EMPTY_STAMP.t, u64::MAX);
    }

    #[test]
    fn shadow_table_far_addresses_round_trip() {
        // Synthetic function-pointer addresses live above the dense
        // directory and fall through to the Fx map.
        let far_addr = 0xF000_0000_0000u64 | 8;
        let mut t = ShadowTable::new();
        t.record_store(far_addr, 2, 9);
        assert_eq!(t.last_writer(far_addr), Stamp { t: 2, push: 9 });
        assert_eq!(t.last_writer(far_addr + 8), EMPTY_STAMP);
    }

    #[test]
    fn reentered_loop_instance_starts_with_clean_shadow_state() {
        // An outer loop runs an inner loop twice. The inner loop stores to
        // `cell` only on (outer 0, inner 0) and loads `cell` every inner
        // iteration. The first inner instance therefore carries real RAW
        // conflicts (iters 1..=4 consume iter 0's store); the second must
        // have none — a stale last-writer stamp escaping the
        // instance-start time exclusion would fabricate them.
        let mut m = Module::new("reentry");
        let g = m.add_global(Global::zeroed("cell", 1));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let two = fb.const_i64(2);
        let five = fb.const_i64(5);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let cell = fb.global_addr(g);
        let outer_header = fb.create_block("outer_header");
        let outer_body = fb.create_block("outer_body");
        let inner_header = fb.create_block("inner_header");
        let inner_body = fb.create_block("inner_body");
        let do_store = fb.create_block("do_store");
        let after = fb.create_block("after");
        let outer_latch = fb.create_block("outer_latch");
        let exit = fb.create_block("exit");
        fb.br(outer_header);
        fb.switch_to(outer_header);
        let j = fb.phi(Type::I64);
        let cj = fb.icmp(IcmpPred::Slt, j, two);
        fb.cond_br(cj, outer_body, exit);
        fb.switch_to(outer_body);
        fb.br(inner_header);
        fb.switch_to(inner_header);
        let i = fb.phi(Type::I64);
        let ci = fb.icmp(IcmpPred::Slt, i, five);
        fb.cond_br(ci, inner_body, outer_latch);
        fb.switch_to(inner_body);
        let s = fb.add(i, j);
        let first = fb.icmp(IcmpPred::Eq, s, zero);
        fb.cond_br(first, do_store, after);
        fb.switch_to(do_store);
        fb.store(one, cell);
        fb.br(after);
        fb.switch_to(after);
        fb.load(Type::I64, cell);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, outer_body, zero);
        fb.add_phi_incoming(i, after, i2);
        fb.br(inner_header);
        fb.switch_to(outer_latch);
        let j2 = fb.add(j, one);
        fb.add_phi_incoming(j, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(j, outer_latch, j2);
        fb.br(outer_header);
        fb.switch_to(exit);
        fb.ret(Some(zero));
        m.add_function(fb.finish().unwrap());

        let p = profile(&m, &[]);
        let inner: Vec<_> = p
            .loop_instances()
            .filter(|(_, _, inst)| p.loop_meta[inst.meta].depth == 2)
            .collect();
        assert_eq!(inner.len(), 2, "two inner instances");
        let (_, _, first_inst) = inner[0];
        let (_, _, second_inst) = inner[1];
        assert_eq!(first_inst.mem_conflict_iters, vec![1, 2, 3, 4]);
        assert!(
            second_inst.mem_conflict_iters.is_empty(),
            "stale shadow stamps leaked into the re-entered instance: {:?}",
            second_inst.mem_conflict_iters
        );
    }
}
