//! Limiter attribution: *why* each loop hit its speedup limit.
//!
//! The evaluator ([`crate::eval`]) reports opaque numbers — a loop was
//! "marked serial" or stopped short of ideal scaling. This module names
//! the responsible cost term. While folding the region tree in explain
//! mode, each loop instance records:
//!
//! - its **best** cost (what the model achieved, `min(serial, parallel)`),
//! - its **ideal** cost (the same model re-costed with every liftable
//!   limiter removed: no memory conflicts, no register LCDs, no call
//!   gate, perfect prediction — i.e. pure wave/pipeline scheduling of the
//!   adjusted iteration lengths), and
//! - the **gap** `best − ideal`: dynamic IR instructions of unrealized
//!   parallelism. A loop marked serial has `best = serial`, so the gap is
//!   exactly the speedup the model left on the table.
//!
//! Each manifested cause (a [`LimiterKind`]) is then **counterfactually
//! re-costed** with that cause alone lifted; the savings answer "lifting
//! this limiter alone unlocks ≤N× more". The gap is allocated across
//! causes conservatively (see [`allocate`]): each limiter's weight never
//! exceeds its solo counterfactual savings, any unexplained residue goes
//! to [`LimiterKind::LoadImbalance`], and the weights **sum exactly to
//! the gap** — the conservation law the proptests enforce.
//!
//! Attribution is strictly opt-in: the normal [`crate::evaluate`] path
//! performs none of this work and its `EvalReport` stays byte-identical.

use crate::config::{Config, ExecModel};
use crate::profile::CallClass;
use lp_ir::BlockId;
use std::fmt;

/// The cost term that limited a loop's parallel speedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LimiterKind {
    /// Cross-iteration memory RAW conflicts (serializes DOALL, breaks
    /// PDOALL chunks, stretches the HELIX sync window).
    MemoryRaw,
    /// A non-computable register loop-carried dependence.
    RegisterLcd,
    /// A reduction LCD evaluated without reduction hardware (`reduc0`).
    Reduction,
    /// Value-prediction misses on an otherwise-decoupled LCD (`dep2`).
    ValuePrediction,
    /// The `fn` flag gate: calls of this class serialized the loop.
    CallGate(CallClass),
    /// Residual gap no single lift explains: uneven iteration lengths
    /// under wave scheduling, or causes that only matter in combination.
    LoadImbalance,
}

impl LimiterKind {
    /// Stable machine-readable name (used in `explain.json`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            LimiterKind::MemoryRaw => "memory-raw",
            LimiterKind::RegisterLcd => "register-lcd",
            LimiterKind::Reduction => "reduction",
            LimiterKind::ValuePrediction => "value-prediction",
            LimiterKind::CallGate(CallClass::NoCalls) => "call-gate(none)",
            LimiterKind::CallGate(CallClass::PureCalls) => "call-gate(pure)",
            LimiterKind::CallGate(CallClass::InstrumentedCalls) => "call-gate(instrumented)",
            LimiterKind::CallGate(CallClass::UnsafeCalls) => "call-gate(unsafe)",
            LimiterKind::LoadImbalance => "load-imbalance",
        }
    }

    /// One-line human description for the `lpstudy explain` table.
    #[must_use]
    pub fn describe(&self) -> &'static str {
        match self {
            LimiterKind::MemoryRaw => "cross-iteration memory RAW dependence",
            LimiterKind::RegisterLcd => "non-computable register LCD",
            LimiterKind::Reduction => "reduction LCD without reduction hardware",
            LimiterKind::ValuePrediction => "value-prediction misses",
            LimiterKind::CallGate(_) => "calls disallowed by the fn flag",
            LimiterKind::LoadImbalance => "iteration length imbalance / combined causes",
        }
    }
}

impl fmt::Display for LimiterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One ranked limiter: its conserved share of the gap plus the solo
/// counterfactual.
#[derive(Debug, Clone)]
pub struct Limiter {
    /// What limited the loop.
    pub kind: LimiterKind,
    /// Share of the gap attributed to this cause. Per loop, limiter
    /// weights sum exactly to the loop's gap (conservation).
    pub weight: u64,
    /// Counterfactual: re-costing with this cause alone lifted saves at
    /// most this many dynamic IR instructions.
    pub savings: u64,
    /// Dynamic loop instances in which this limiter carried weight.
    pub instances: u64,
}

impl Limiter {
    /// "Lifting this limiter alone unlocks ≤N× more": the speedup factor
    /// if `savings` came off a best cost of `best`.
    #[must_use]
    pub fn unlock_factor(&self, best: u64) -> f64 {
        if best == 0 {
            return 1.0;
        }
        let lifted = best.saturating_sub(self.savings).max(1);
        best as f64 / lifted as f64
    }
}

/// Attribution for one static loop, aggregated over its dynamic
/// instances.
#[derive(Debug, Clone)]
pub struct LoopAttribution {
    /// Function containing the loop.
    pub func_name: String,
    /// Header block (source location within the function).
    pub header: BlockId,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
    /// Dynamic instances executed.
    pub instances: u64,
    /// Instances the model parallelized.
    pub parallel_instances: u64,
    /// Raw serial cost across instances (matches `LoopSummary`).
    pub serial_cost: u64,
    /// Loop-local serial cost after child savings were folded in; the
    /// upper bound of `best_cost`.
    pub serial_adj: u64,
    /// Achieved cost across instances (`Σ min(serial, parallel)`).
    pub best_cost: u64,
    /// Cost with every liftable limiter removed.
    pub ideal_cost: u64,
    /// `best_cost − ideal_cost`: unrealized parallelism, conserved across
    /// `limiters`.
    pub gap: u64,
    /// Ranked limiters (largest weight first); weights sum to `gap`.
    pub limiters: Vec<Limiter>,
}

impl LoopAttribution {
    /// `"func/bN"` — the loop's source location.
    #[must_use]
    pub fn location(&self) -> String {
        format!("{}/{}", self.func_name, self.header)
    }

    /// Verdict string for tables and collapsed stacks.
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        if self.parallel_instances == 0 {
            "serial"
        } else if self.parallel_instances < self.instances {
            "partial"
        } else {
            "parallel"
        }
    }
}

/// The full attribution for one `(model, config)` evaluation.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Program (module) name.
    pub program: String,
    /// Execution model evaluated.
    pub model: ExecModel,
    /// Configuration evaluated.
    pub config: Config,
    /// Sequential cost of the whole program.
    pub total_cost: u64,
    /// Best achievable cost under the model/config.
    pub best_cost: u64,
    /// Per-static-loop attribution (only loops that executed), ranked by
    /// gap descending.
    pub loops: Vec<LoopAttribution>,
    /// Program-level rollup: limiter weights summed across loops, ranked
    /// by weight descending.
    pub limiters: Vec<Limiter>,
    /// Per-region parallel verdict, indexed by `RegionId` (false for call
    /// regions). Drives the serial/parallel annotation in the
    /// collapsed-stack export.
    pub region_parallel: Vec<bool>,
}

impl Attribution {
    /// Sum of per-loop gaps — total unrealized parallelism.
    #[must_use]
    pub fn total_gap(&self) -> u64 {
        self.loops.iter().map(|l| l.gap).sum()
    }

    /// The human-readable ranked table `lpstudy explain` prints.
    #[must_use]
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== limiter attribution: {} · {} {} ==",
            self.program, self.model, self.config
        );
        let speedup = self.total_cost.max(1) as f64 / self.best_cost.max(1) as f64;
        let _ = writeln!(
            out,
            "program: total={} best={} speedup={speedup:.2}x gap={}",
            self.total_cost,
            self.best_cost,
            self.total_gap(),
        );
        if self.limiters.is_empty() {
            out.push_str("no limiters: every loop reached its ideal cost\n");
        } else {
            out.push_str("top limiters (program):\n");
            let gap = self.total_gap().max(1);
            for (i, lim) in self.limiters.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  #{} {:<24} weight={:<10} {:>5.1}% of gap  lifts<={:.2}x  ({})",
                    i + 1,
                    lim.kind.name(),
                    lim.weight,
                    100.0 * lim.weight as f64 / gap as f64,
                    lim.unlock_factor(self.best_cost),
                    lim.kind.describe(),
                );
            }
        }
        for l in &self.loops {
            let _ = writeln!(
                out,
                "loop {} depth={} [{}] instances={} serial={} best={} ideal={} gap={}",
                l.location(),
                l.depth,
                l.verdict(),
                l.instances,
                l.serial_cost,
                l.best_cost,
                l.ideal_cost,
                l.gap,
            );
            for lim in &l.limiters {
                let _ = writeln!(
                    out,
                    "  - {:<24} weight={:<10} saves<={:<10} lifts<={:.2}x",
                    lim.kind.name(),
                    lim.weight,
                    lim.savings,
                    lim.unlock_factor(l.best_cost),
                );
            }
        }
        out
    }
}

/// Allocates a loop instance's `gap` across its manifested causes.
///
/// Each cause's weight is capped by its solo counterfactual savings; the
/// portion of the gap no cause explains goes to
/// [`LimiterKind::LoadImbalance`]. When the solo savings over-explain the
/// gap (causes overlap), they are scaled down proportionally with a
/// largest-remainder pass so the integer weights still **sum exactly to
/// `gap`**.
#[must_use]
pub(crate) fn allocate(gap: u64, contribs: &[(LimiterKind, u64)]) -> Vec<(LimiterKind, u64, u64)> {
    if gap == 0 {
        return Vec::new();
    }
    let total: u128 = contribs.iter().map(|&(_, s)| u128::from(s)).sum();
    let mut out: Vec<(LimiterKind, u64, u64)> = Vec::new();
    if total == 0 {
        out.push((LimiterKind::LoadImbalance, gap, 0));
        return out;
    }
    if total <= u128::from(gap) {
        // Solo savings under-explain the gap: take them verbatim and
        // charge the residue to load imbalance.
        for &(kind, s) in contribs {
            if s > 0 {
                out.push((kind, s, s));
            }
        }
        let explained = total as u64;
        if explained < gap {
            out.push((LimiterKind::LoadImbalance, gap - explained, 0));
        }
        return out;
    }
    // Overlapping causes: scale down proportionally, largest remainder.
    let mut floors: Vec<(usize, u64, u128)> = Vec::with_capacity(contribs.len());
    let mut allocated = 0u64;
    for (i, &(_, s)) in contribs.iter().enumerate() {
        let num = u128::from(gap) * u128::from(s);
        let w = (num / total) as u64;
        allocated += w;
        floors.push((i, w, num % total));
    }
    let mut rest = gap - allocated;
    // Hand the leftover units to the largest remainders (ties: first in
    // cause order) — deterministic and exact.
    floors.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    for f in &mut floors {
        if rest == 0 {
            break;
        }
        f.1 += 1;
        rest -= 1;
    }
    floors.sort_by_key(|f| f.0);
    for (i, w, _) in floors {
        if w > 0 {
            out.push((contribs[i].0, w, contribs[i].1));
        }
    }
    out
}

/// Per-static-loop accumulator used while folding the tree in explain
/// mode.
#[derive(Debug, Clone, Default)]
pub(crate) struct LoopAttrAgg {
    pub instances: u64,
    pub parallel_instances: u64,
    pub serial_cost: u64,
    pub serial_adj: u64,
    pub best_cost: u64,
    pub ideal_cost: u64,
    pub gap: u64,
    /// `(kind, weight, savings, instances)` — linear scan; at most a
    /// handful of kinds per loop.
    pub limiters: Vec<(LimiterKind, u64, u64, u64)>,
}

/// Collects per-instance evidence during an explained evaluation.
#[derive(Debug)]
pub(crate) struct AttrCollector {
    pub loops: Vec<LoopAttrAgg>,
    pub region_parallel: Vec<bool>,
}

impl AttrCollector {
    pub(crate) fn new(n_loops: usize, n_regions: usize) -> AttrCollector {
        AttrCollector {
            loops: vec![LoopAttrAgg::default(); n_loops],
            region_parallel: vec![false; n_regions],
        }
    }

    /// Folds one evaluated loop instance in.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_instance(
        &mut self,
        meta: usize,
        region: usize,
        serial_raw: u64,
        serial_adj: u64,
        best: u64,
        ideal: u64,
        parallel: bool,
        contribs: &[(LimiterKind, u64)],
    ) {
        self.region_parallel[region] = parallel;
        let gap = best.saturating_sub(ideal);
        let agg = &mut self.loops[meta];
        agg.instances += 1;
        agg.parallel_instances += u64::from(parallel);
        agg.serial_cost += serial_raw;
        agg.serial_adj += serial_adj;
        agg.best_cost += best;
        agg.ideal_cost += ideal;
        agg.gap += gap;
        for (kind, weight, savings) in allocate(gap, contribs) {
            match agg.limiters.iter_mut().find(|l| l.0 == kind) {
                Some(l) => {
                    l.1 += weight;
                    l.2 += savings;
                    l.3 += 1;
                }
                None => agg.limiters.push((kind, weight, savings, 1)),
            }
        }
    }

    /// Finalizes into the public [`Attribution`] (ranked, rolled up).
    pub(crate) fn finish(
        self,
        program: &str,
        model: ExecModel,
        config: Config,
        total_cost: u64,
        best_cost: u64,
        meta: &[crate::profile::LoopMeta],
    ) -> Attribution {
        let mut loops: Vec<LoopAttribution> = Vec::new();
        let mut rollup: Vec<(LimiterKind, u64, u64, u64)> = Vec::new();
        for (i, agg) in self.loops.into_iter().enumerate() {
            if agg.instances == 0 {
                continue;
            }
            for &(kind, w, s, n) in &agg.limiters {
                match rollup.iter_mut().find(|l| l.0 == kind) {
                    Some(l) => {
                        l.1 += w;
                        l.2 += s;
                        l.3 += n;
                    }
                    None => rollup.push((kind, w, s, n)),
                }
            }
            let mut limiters: Vec<Limiter> = agg
                .limiters
                .into_iter()
                .map(|(kind, weight, savings, instances)| Limiter {
                    kind,
                    weight,
                    savings,
                    instances,
                })
                .collect();
            limiters.sort_by(|a, b| b.weight.cmp(&a.weight).then(b.savings.cmp(&a.savings)));
            loops.push(LoopAttribution {
                func_name: meta[i].func_name.clone(),
                header: meta[i].header,
                depth: meta[i].depth,
                instances: agg.instances,
                parallel_instances: agg.parallel_instances,
                serial_cost: agg.serial_cost,
                serial_adj: agg.serial_adj,
                best_cost: agg.best_cost,
                ideal_cost: agg.ideal_cost,
                gap: agg.gap,
                limiters,
            });
        }
        loops.sort_by(|a, b| b.gap.cmp(&a.gap).then(b.serial_cost.cmp(&a.serial_cost)));
        let mut limiters: Vec<Limiter> = rollup
            .into_iter()
            .map(|(kind, weight, savings, instances)| Limiter {
                kind,
                weight,
                savings,
                instances,
            })
            .collect();
        limiters.sort_by(|a, b| b.weight.cmp(&a.weight).then(b.savings.cmp(&a.savings)));
        Attribution {
            program: program.to_string(),
            model,
            config,
            total_cost,
            best_cost,
            loops,
            limiters,
            region_parallel: self.region_parallel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEM: LimiterKind = LimiterKind::MemoryRaw;
    const REG: LimiterKind = LimiterKind::RegisterLcd;

    fn weights(v: &[(LimiterKind, u64, u64)]) -> u64 {
        v.iter().map(|&(_, w, _)| w).sum()
    }

    #[test]
    fn allocate_conserves_the_gap() {
        for (gap, contribs) in [
            (100u64, vec![(MEM, 60u64), (REG, 20)]),
            (100, vec![(MEM, 70), (REG, 70)]),
            (100, vec![]),
            (100, vec![(MEM, 0), (REG, 0)]),
            (7, vec![(MEM, 3), (REG, 3), (LimiterKind::Reduction, 3)]),
            (1, vec![(MEM, 1000), (REG, 999)]),
        ] {
            let out = allocate(gap, &contribs);
            assert_eq!(weights(&out), gap, "gap={gap} contribs={contribs:?}");
        }
        assert!(allocate(0, &[(MEM, 5)]).is_empty());
    }

    #[test]
    fn allocate_caps_weights_and_charges_residue_to_imbalance() {
        // Under-explained: solo savings 60+20 < gap 100 → 20 to imbalance.
        let out = allocate(100, &[(MEM, 60), (REG, 20)]);
        assert_eq!(out[0], (MEM, 60, 60));
        assert_eq!(out[1], (REG, 20, 20));
        assert_eq!(out[2], (LimiterKind::LoadImbalance, 20, 0));
        // Unexplained entirely.
        let out = allocate(50, &[]);
        assert_eq!(out, vec![(LimiterKind::LoadImbalance, 50, 0)]);
    }

    #[test]
    fn allocate_scales_overlapping_causes() {
        // Over-explained: 70+70 > 100 → proportional 50/50.
        let out = allocate(100, &[(MEM, 70), (REG, 70)]);
        assert_eq!(out, vec![(MEM, 50, 70), (REG, 50, 70)]);
        // Largest remainder: 7 over (3,3,3) → 3,2,2 (first wins the tie).
        let out = allocate(7, &[(MEM, 3), (REG, 3), (LimiterKind::Reduction, 3)]);
        assert_eq!(weights(&out), 7);
        assert_eq!(out[0].1, 3);
        // No cause's weight exceeds its savings-derived share by more
        // than the remainder unit.
        for &(_, w, s) in &out {
            assert!(w <= s);
        }
    }

    #[test]
    fn unlock_factor_guards_division() {
        let lim = Limiter {
            kind: MEM,
            weight: 10,
            savings: 10,
            instances: 1,
        };
        assert!((lim.unlock_factor(20) - 2.0).abs() < 1e-12);
        assert_eq!(lim.unlock_factor(0), 1.0);
        // Savings >= best: clamps instead of dividing by zero.
        assert!(lim.unlock_factor(5) >= 1.0);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(LimiterKind::MemoryRaw.name(), "memory-raw");
        assert_eq!(
            LimiterKind::CallGate(CallClass::UnsafeCalls).name(),
            "call-gate(unsafe)"
        );
        assert_eq!(format!("{}", LimiterKind::LoadImbalance), "load-imbalance");
    }
}
