//! # lp-runtime — Loopapalooza's run-time component and evaluator
//!
//! This crate is the heart of the limit study (paper §III):
//!
//! - [`tracker::Profiler`] consumes the interpreter's instrumentation —
//!   per-instruction call-backs under the tree engine, natively decoded
//!   block batches under the bytecode engine (DESIGN.md §15) — and
//!   produces a [`profile::Profile`]: the dynamic region tree with
//!   iteration stamps, memory RAW conflicts (with the cactus-stack
//!   structural-hazard filter of §II-E), register-LCD value prediction
//!   traces, and call classes;
//! - [`config`] defines the `reduc/dep/fn` flag lattice (Table II) and
//!   the DOALL / Partial-DOALL / HELIX execution models;
//! - [`model`] implements the three parallel cost models of §III-B;
//! - [`eval::evaluate`] folds a profile bottom-up (nested, multi-level
//!   parallelism) into the limit speedup and coverage for any
//!   `(model, config)` pair — one profile run serves all configurations;
//! - [`census`] quantifies Table I; [`report`] provides the GEOMEAN
//!   aggregation used by Figures 2–5;
//! - [`sweep`] fans the `(benchmark × model × config)` lattice over
//!   scoped worker threads — profile once, evaluate many on a shared
//!   [`std::sync::Arc`]`<Profile>` — with a deterministic merge so the
//!   output is byte-identical for any `--jobs` count.

pub mod audit;
pub mod census;
pub mod config;
pub mod eval;
pub mod explain;
pub mod export;
pub mod model;
pub mod profile;
pub mod replay;
pub mod report;
pub mod store;
pub mod sweep;
pub mod tracker;
pub mod witness;

pub use audit::{audit_snapshot, render_audit, Check, Verdict};
pub use census::Census;
#[allow(deprecated)]
pub use config::paper_rows;
pub use config::{
    best_helix, best_pdoall, table2_rows, Config, DepMode, ExecModel, FnMode, ReducMode,
};
pub use eval::{
    evaluate, evaluate_explained, evaluate_explained_with, evaluate_with, EvalOptions, EvalReport,
    LoopSummary,
};
pub use explain::{Attribution, Limiter, LimiterKind, LoopAttribution};
pub use export::{collapsed_stacks, Export, SweepExport};
pub use profile::{
    CallClass, LoopInstance, LoopMeta, MetaIndex, Profile, Region, RegionId, RegionKind,
};
pub use replay::{
    prediction_config, replay_module, replay_module_with, BenchReplay, Divergence, DivergenceKind,
    LoopReplay, RejectReason, RejectedLoop, ReplayExport, ThreadedExec,
};
pub use report::{geomean, geomean_coverage, geomean_speedup, mean, ProgramResult};
pub use store::{
    decode_entry, encode_entry, profile_module_cached, CodecError, ProfileKey, ProfileStore,
    StoreMode, PROFILE_FORMAT_VERSION,
};
pub use sweep::{grid, parallel_map, sweep, sweep_points, Jobs, SweepPoint, SweepUnit};
pub use tracker::{profile_module, profile_module_with, Profiler, ProfilerOptions};
pub use witness::{
    profile_module_witnessed, ConflictKind, IndependenceWitness, WitnessReport, WitnessViolation,
};

/// Address used to model the architectural stack pointer as a memory cell
/// when the cactus-stack assumption is disabled (see
/// [`ProfilerOptions::cactus_stack`]). Sits in the global region, below
/// any real global (the machine lays globals out from `GLOBAL_BASE` up).
#[must_use]
pub const fn profile_sp_hazard_addr() -> u64 {
    lp_interp::GLOBAL_BASE - 64
}
