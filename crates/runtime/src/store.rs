//! Persistent, content-addressed profile store (warm-start sweeps).
//!
//! A [`Profile`] is a pure function of the module text and the machine
//! configuration: the interpreter is deterministic (seeded RNG, metered
//! cost axis), so two runs of the same module under the same
//! [`MachineConfig`] and [`ProfilerOptions`] produce byte-identical
//! profiles. That makes profiles cacheable *across processes* — the
//! expensive instrumented run happens once and every later `fig*`,
//! `sweep`, `ablations`, or `lpstudy` invocation warm-starts from disk.
//!
//! Three pieces:
//!
//! - [`ProfileKey`] — a stable 64-bit FNV-1a digest of the
//!   canonical-printed module, the key-relevant [`MachineConfig`] fields,
//!   the [`ProfilerOptions`], and [`PROFILE_FORMAT_VERSION`]. Bumping the
//!   format version invalidates every old entry by construction.
//! - a versioned, length-prefixed binary codec for `(Profile, RunResult)`
//!   — hand-rolled, zero-dep, little-endian, with a trailing FNV-1a
//!   checksum (see [`encode_entry`] / [`decode_entry`]). The decoder is
//!   defensive: corrupt or truncated input yields a [`CodecError`], never
//!   a panic or an unbounded allocation.
//! - [`ProfileStore`] — `open`/`get`/`put`/`gc` over a cache directory
//!   (default `results/.lp-cache/`), one `{key:016x}.lpp` file per entry,
//!   atomic write-then-rename puts, and corruption handling that discards
//!   the bad entry with a warning and falls back to re-profiling. A cache
//!   problem can cost time; it can never abort a study or change its
//!   results.
//!
//! On-disk entry layout (all integers little-endian):
//!
//! ```text
//! +--------+---------+-------------+===========+----------+
//! | "LPPF" | version | payload_len |  payload  | checksum |
//! | 4 B    | u32     | u64         |  N bytes  | u64      |
//! +--------+---------+-------------+===========+----------+
//! ```
//!
//! The checksum is FNV-1a over the payload bytes and is verified *before*
//! decoding, so a bit flip anywhere in the payload is caught up front.
//!
//! Behaviour is controlled by `LP_PROFILE_CACHE=off|ro|rw` (see
//! [`StoreMode`]) and the binaries' `--profile-cache DIR` flag; the
//! `store_hits` / `store_misses` / `store_corrupt_discarded` counters and
//! the `store-io` span make cache effectiveness visible in traces.

use crate::profile::{
    CallClass, LcdInstance, LoopInstance, LoopMeta, MetaIndex, Profile, Region, RegionId,
    RegionKind,
};
use crate::tracker::{profile_module_with, ProfilerOptions};
use lp_analysis::{LcdClass, LoopId, ModuleAnalysis, ScevClass};
use lp_interp::{MachineConfig, RunResult, Value};
use lp_ir::{BinOp, BlockId, FuncId, Module, ValueId};
use lp_obs::{lp_info, span, Counter};
use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Version stamp of the on-disk entry format *and* of the profile
/// semantics. Bump whenever the codec layout, the profiler's output, or
/// the interpreter's cost model changes — the key derivation folds it in,
/// so old cache entries simply stop being found (and are eventually
/// garbage-collected) instead of being misinterpreted.
pub const PROFILE_FORMAT_VERSION: u32 = 1;

/// Magic prefix of every cache entry ("LoopaPalooza ProFile").
const MAGIC: [u8; 4] = *b"LPPF";

/// File extension of cache entries.
const ENTRY_EXT: &str = "lpp";

// --------------------------------------------------------------------
// FNV-1a (the workspace's zero-dep stable hash).
// --------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// FNV-1a digest of a byte slice (used for the entry checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

// --------------------------------------------------------------------
// ProfileKey
// --------------------------------------------------------------------

/// Content address of a profile: a stable digest of everything the
/// profiler's output depends on.
///
/// Covered: the canonical-printed module text, `max_cost`,
/// `max_call_depth`, `rng_seed`, and `capture_output` from
/// [`MachineConfig`], the [`ProfilerOptions`] knobs, and
/// [`PROFILE_FORMAT_VERSION`]. `watched_values` is deliberately excluded:
/// the profiler derives it from the module, so it carries no information
/// the module text doesn't already. `engine` is likewise excluded — the
/// tree walk and the bytecode engine are observationally identical (the
/// differential suite proves byte-identical profiles), so a profile
/// cached under one engine is valid for the other.
///
/// The key only addresses *argument-less* entry runs (how every study
/// binary profiles); callers passing program arguments must bypass the
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProfileKey(pub u64);

impl ProfileKey {
    /// Derives the key for profiling `module` under `config`/`options`.
    #[must_use]
    pub fn of(module: &Module, config: &MachineConfig, options: &ProfilerOptions) -> ProfileKey {
        let mut h = Fnv::new();
        h.update(&PROFILE_FORMAT_VERSION.to_le_bytes());
        h.update(lp_ir::printer::print_module(module).as_bytes());
        h.update(&config.max_cost.to_le_bytes());
        h.update(&config.max_call_depth.to_le_bytes());
        h.update(&config.rng_seed.to_le_bytes());
        h.update(&[u8::from(config.capture_output)]);
        h.update(&[u8::from(options.cactus_stack)]);
        ProfileKey(h.finish())
    }
}

impl fmt::Display for ProfileKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

// --------------------------------------------------------------------
// Codec errors
// --------------------------------------------------------------------

/// Why a cache entry failed to decode. Every variant is recoverable: the
/// store discards the entry and the caller re-profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the structure it promised.
    Truncated,
    /// The magic prefix is not `LPPF` — not a cache entry at all.
    BadMagic,
    /// Written by a different [`PROFILE_FORMAT_VERSION`].
    VersionMismatch(u32),
    /// The trailing FNV-1a checksum does not match the payload.
    ChecksumMismatch,
    /// The payload decoded but violated a structural invariant.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated entry"),
            CodecError::BadMagic => write!(f, "bad magic (not a profile cache entry)"),
            CodecError::VersionMismatch(v) => {
                write!(
                    f,
                    "format version {v} (this build expects {PROFILE_FORMAT_VERSION})"
                )
            }
            CodecError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// --------------------------------------------------------------------
// Encoder
// --------------------------------------------------------------------

/// Little-endian byte sink for the payload.
#[derive(Debug, Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string length exceeds u32"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length prefix for a following sequence.
    fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("sequence length exceeds u32"));
    }
}

// --------------------------------------------------------------------
// Decoder
// --------------------------------------------------------------------

/// Defensive cursor over the payload: every read is bounds-checked and
/// every length prefix is validated against the bytes actually remaining
/// before any allocation happens.
#[derive(Debug)]
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = Result<T, CodecError>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a sequence length and proves the payload can actually hold
    /// that many elements of at least `min_elem_bytes` each — so a
    /// corrupt length can never trigger a huge pre-allocation.
    fn len(&mut self, min_elem_bytes: usize) -> DecodeResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    fn str(&mut self) -> DecodeResult<String> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Malformed("non-UTF-8 string"))
    }

    fn vec_u32(&mut self) -> DecodeResult<Vec<u32>> {
        let n = self.len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn vec_u64(&mut self) -> DecodeResult<Vec<u64>> {
        let n = self.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn finish(&self) -> DecodeResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes after payload"))
        }
    }
}

// --------------------------------------------------------------------
// Enum tags (explicit, so codec stability never depends on declaration
// order staying put).
// --------------------------------------------------------------------

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::SDiv => 3,
        BinOp::SRem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::AShr => 9,
        BinOp::SMin => 10,
        BinOp::SMax => 11,
        BinOp::FAdd => 12,
        BinOp::FSub => 13,
        BinOp::FMul => 14,
        BinOp::FDiv => 15,
        BinOp::FMin => 16,
        BinOp::FMax => 17,
    }
}

fn binop_of(tag: u8) -> DecodeResult<BinOp> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::SDiv,
        4 => BinOp::SRem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::AShr,
        10 => BinOp::SMin,
        11 => BinOp::SMax,
        12 => BinOp::FAdd,
        13 => BinOp::FSub,
        14 => BinOp::FMul,
        15 => BinOp::FDiv,
        16 => BinOp::FMin,
        17 => BinOp::FMax,
        _ => return Err(CodecError::Malformed("unknown BinOp tag")),
    })
}

fn scev_tag(c: ScevClass) -> u8 {
    match c {
        ScevClass::Induction => 0,
        ScevClass::Mutual => 1,
        ScevClass::NonComputable => 2,
    }
}

fn scev_of(tag: u8) -> DecodeResult<ScevClass> {
    Ok(match tag {
        0 => ScevClass::Induction,
        1 => ScevClass::Mutual,
        2 => ScevClass::NonComputable,
        _ => return Err(CodecError::Malformed("unknown ScevClass tag")),
    })
}

fn call_class_tag(c: CallClass) -> u8 {
    match c {
        CallClass::NoCalls => 0,
        CallClass::PureCalls => 1,
        CallClass::InstrumentedCalls => 2,
        CallClass::UnsafeCalls => 3,
    }
}

fn call_class_of(tag: u8) -> DecodeResult<CallClass> {
    Ok(match tag {
        0 => CallClass::NoCalls,
        1 => CallClass::PureCalls,
        2 => CallClass::InstrumentedCalls,
        3 => CallClass::UnsafeCalls,
        _ => return Err(CodecError::Malformed("unknown CallClass tag")),
    })
}

fn enc_lcd_class(e: &mut Enc, c: LcdClass) {
    match c {
        LcdClass::Computable(s) => {
            e.u8(0);
            e.u8(scev_tag(s));
        }
        LcdClass::Reduction(op) => {
            e.u8(1);
            e.u8(binop_tag(op));
        }
        LcdClass::NonComputable => e.u8(2),
    }
}

fn dec_lcd_class(d: &mut Dec<'_>) -> DecodeResult<LcdClass> {
    Ok(match d.u8()? {
        0 => LcdClass::Computable(scev_of(d.u8()?)?),
        1 => LcdClass::Reduction(binop_of(d.u8()?)?),
        2 => LcdClass::NonComputable,
        _ => return Err(CodecError::Malformed("unknown LcdClass tag")),
    })
}

fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::I(x) => {
            e.u8(0);
            e.i64(*x);
        }
        Value::F(x) => {
            e.u8(1);
            e.f64(*x);
        }
        Value::P(x) => {
            e.u8(2);
            e.u64(*x);
        }
        Value::B(x) => {
            e.u8(3);
            e.u8(u8::from(*x));
        }
        Value::Unit => e.u8(4),
    }
}

fn dec_value(d: &mut Dec<'_>) -> DecodeResult<Value> {
    Ok(match d.u8()? {
        0 => Value::I(d.i64()?),
        1 => Value::F(d.f64()?),
        2 => Value::P(d.u64()?),
        3 => Value::B(match d.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Malformed("non-boolean byte")),
        }),
        4 => Value::Unit,
        _ => return Err(CodecError::Malformed("unknown Value tag")),
    })
}

// --------------------------------------------------------------------
// Struct codecs
// --------------------------------------------------------------------

fn enc_loop_meta(e: &mut Enc, m: &LoopMeta) {
    e.u32(m.func.0);
    e.u32(m.loop_id.0);
    e.str(&m.func_name);
    e.u32(m.header.0);
    e.u32(m.depth);
    e.len(m.traced_phis.len());
    for (v, c) in &m.traced_phis {
        e.u32(v.0);
        enc_lcd_class(e, *c);
    }
    e.u32(m.computable_phis);
}

fn dec_loop_meta(d: &mut Dec<'_>) -> DecodeResult<LoopMeta> {
    let func = FuncId(d.u32()?);
    let loop_id = LoopId(d.u32()?);
    let func_name = d.str()?;
    let header = BlockId(d.u32()?);
    let depth = d.u32()?;
    let n = d.len(5)?;
    let mut traced_phis = Vec::with_capacity(n);
    for _ in 0..n {
        let v = ValueId(d.u32()?);
        traced_phis.push((v, dec_lcd_class(d)?));
    }
    Ok(LoopMeta {
        func,
        loop_id,
        func_name,
        header,
        depth,
        traced_phis,
        computable_phis: d.u32()?,
    })
}

fn enc_lcd_instance(e: &mut Enc, l: &LcdInstance) {
    e.len(l.mispredict_iters.len());
    for &i in &l.mispredict_iters {
        e.u32(i);
    }
    e.u64(l.max_def_rel);
    e.u64(l.observed);
    e.u64(l.predicted);
}

fn dec_lcd_instance(d: &mut Dec<'_>) -> DecodeResult<LcdInstance> {
    Ok(LcdInstance {
        mispredict_iters: d.vec_u32()?,
        max_def_rel: d.u64()?,
        observed: d.u64()?,
        predicted: d.u64()?,
    })
}

fn enc_loop_instance(e: &mut Enc, i: &LoopInstance) {
    e.u64(i.meta as u64);
    e.len(i.iter_starts.len());
    for &s in &i.iter_starts {
        e.u64(s);
    }
    e.len(i.mem_conflict_iters.len());
    for &c in &i.mem_conflict_iters {
        e.u32(c);
    }
    e.u64(i.mem_max_skew);
    e.u64(i.mem_max_producer_rel);
    e.u64(i.mem_min_consumer_rel);
    e.u64(i.mem_edges);
    e.len(i.lcds.len());
    for l in &i.lcds {
        enc_lcd_instance(e, l);
    }
    e.u8(call_class_tag(i.call_class));
}

fn dec_loop_instance(d: &mut Dec<'_>, meta_count: usize) -> DecodeResult<LoopInstance> {
    let meta = usize::try_from(d.u64()?).map_err(|_| CodecError::Malformed("meta index"))?;
    if meta >= meta_count {
        return Err(CodecError::Malformed("loop meta index out of range"));
    }
    let iter_starts = d.vec_u64()?;
    let mem_conflict_iters = d.vec_u32()?;
    let mem_max_skew = d.u64()?;
    let mem_max_producer_rel = d.u64()?;
    let mem_min_consumer_rel = d.u64()?;
    let mem_edges = d.u64()?;
    let n = d.len(28)?;
    let mut lcds = Vec::with_capacity(n);
    for _ in 0..n {
        lcds.push(dec_lcd_instance(d)?);
    }
    Ok(LoopInstance {
        meta,
        iter_starts,
        mem_conflict_iters,
        mem_max_skew,
        mem_max_producer_rel,
        mem_min_consumer_rel,
        mem_edges,
        lcds,
        call_class: call_class_of(d.u8()?)?,
    })
}

fn enc_region(e: &mut Enc, r: &Region) {
    match r.parent {
        Some(p) => {
            e.u8(1);
            e.u32(p.0);
        }
        None => e.u8(0),
    }
    e.u32(r.parent_iter);
    e.u64(r.start);
    e.u64(r.end);
    match &r.kind {
        RegionKind::Call { func } => {
            e.u8(0);
            e.u32(func.0);
        }
        RegionKind::Loop(inst) => {
            e.u8(1);
            enc_loop_instance(e, inst);
        }
    }
    e.len(r.children.len());
    for c in &r.children {
        e.u32(c.0);
    }
}

fn dec_region(d: &mut Dec<'_>, region_count: usize, meta_count: usize) -> DecodeResult<Region> {
    let parent = match d.u8()? {
        0 => None,
        1 => {
            let p = d.u32()?;
            if p as usize >= region_count {
                return Err(CodecError::Malformed("parent region out of range"));
            }
            Some(RegionId(p))
        }
        _ => return Err(CodecError::Malformed("unknown parent tag")),
    };
    let parent_iter = d.u32()?;
    let start = d.u64()?;
    let end = d.u64()?;
    let kind = match d.u8()? {
        0 => RegionKind::Call {
            func: FuncId(d.u32()?),
        },
        1 => RegionKind::Loop(dec_loop_instance(d, meta_count)?),
        _ => return Err(CodecError::Malformed("unknown RegionKind tag")),
    };
    let raw_children = d.vec_u32()?;
    let mut children = Vec::with_capacity(raw_children.len());
    for c in raw_children {
        if c as usize >= region_count {
            return Err(CodecError::Malformed("child region out of range"));
        }
        children.push(RegionId(c));
    }
    Ok(Region {
        parent,
        parent_iter,
        start,
        end,
        kind,
        children,
    })
}

fn enc_profile(e: &mut Enc, p: &Profile) {
    e.str(&p.program);
    e.u64(p.total_cost);
    e.len(p.func_names.len());
    for n in &p.func_names {
        e.str(n);
    }
    e.len(p.loop_meta.len());
    for m in &p.loop_meta {
        enc_loop_meta(e, m);
    }
    e.len(p.regions.len());
    for r in &p.regions {
        enc_region(e, r);
    }
    // meta_index intentionally not serialized: it is a pure function of
    // loop_meta and is rebuilt on decode.
}

fn dec_profile(d: &mut Dec<'_>) -> DecodeResult<Profile> {
    let program = d.str()?;
    let total_cost = d.u64()?;
    let n_funcs = d.len(4)?;
    let mut func_names = Vec::with_capacity(n_funcs);
    for _ in 0..n_funcs {
        func_names.push(d.str()?);
    }
    let n_meta = d.len(21)?;
    let mut loop_meta = Vec::with_capacity(n_meta);
    for _ in 0..n_meta {
        loop_meta.push(dec_loop_meta(d)?);
    }
    let n_regions = d.len(26)?;
    let mut regions = Vec::with_capacity(n_regions);
    for _ in 0..n_regions {
        regions.push(dec_region(d, n_regions, n_meta)?);
    }
    let meta_index = MetaIndex::from_meta(&loop_meta);
    Ok(Profile {
        program,
        total_cost,
        regions,
        loop_meta,
        meta_index,
        func_names,
    })
}

fn enc_run_result(e: &mut Enc, r: &RunResult) {
    enc_value(e, &r.ret);
    e.u64(r.cost);
    e.len(r.output.len());
    for line in &r.output {
        e.str(line);
    }
}

fn dec_run_result(d: &mut Dec<'_>) -> DecodeResult<RunResult> {
    let ret = dec_value(d)?;
    let cost = d.u64()?;
    let n = d.len(4)?;
    let mut output = Vec::with_capacity(n);
    for _ in 0..n {
        output.push(d.str()?);
    }
    Ok(RunResult { ret, cost, output })
}

// --------------------------------------------------------------------
// Entry framing
// --------------------------------------------------------------------

/// Serializes a `(Profile, RunResult)` pair into a framed, checksummed
/// cache entry.
#[must_use]
pub fn encode_entry(profile: &Profile, run: &RunResult) -> Vec<u8> {
    let mut e = Enc::default();
    enc_profile(&mut e, profile);
    enc_run_result(&mut e, run);
    let payload = e.buf;
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROFILE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let checksum = fnv1a(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Parses a framed cache entry back into `(Profile, RunResult)`.
///
/// # Errors
/// Returns a [`CodecError`] for any malformed input — wrong magic, other
/// format version, truncation, checksum mismatch, or structural
/// violations. Never panics on untrusted bytes.
pub fn decode_entry(bytes: &[u8]) -> DecodeResult<(Profile, RunResult)> {
    if bytes.len() < 16 {
        return Err(CodecError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != PROFILE_FORMAT_VERSION {
        return Err(CodecError::VersionMismatch(version));
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload_len = usize::try_from(payload_len).map_err(|_| CodecError::Truncated)?;
    let rest = &bytes[16..];
    if rest.len() != payload_len + 8 {
        return Err(CodecError::Truncated);
    }
    let (payload, checksum_bytes) = rest.split_at(payload_len);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().unwrap());
    if fnv1a(payload) != stored {
        return Err(CodecError::ChecksumMismatch);
    }
    let mut d = Dec::new(payload);
    let profile = dec_profile(&mut d)?;
    let run = dec_run_result(&mut d)?;
    d.finish()?;
    Ok((profile, run))
}

// --------------------------------------------------------------------
// Store
// --------------------------------------------------------------------

/// How the persistent cache participates in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreMode {
    /// Cache disabled: no reads, no writes.
    Off,
    /// Serve hits but never write (shared read-only cache directories).
    ReadOnly,
    /// Serve hits and persist new profiles (the default when a cache is
    /// requested).
    #[default]
    ReadWrite,
}

impl StoreMode {
    /// Reads `LP_PROFILE_CACHE` from the environment.
    ///
    /// # Errors
    /// Returns the offending value when it is not one of `off|ro|rw`.
    pub fn from_env() -> Result<Option<StoreMode>, String> {
        match std::env::var("LP_PROFILE_CACHE") {
            Ok(v) => v.parse().map(Some).map_err(|()| v),
            Err(_) => Ok(None),
        }
    }
}

impl FromStr for StoreMode {
    type Err = ();

    fn from_str(s: &str) -> Result<StoreMode, ()> {
        match s {
            "off" => Ok(StoreMode::Off),
            "ro" => Ok(StoreMode::ReadOnly),
            "rw" => Ok(StoreMode::ReadWrite),
            _ => Err(()),
        }
    }
}

impl fmt::Display for StoreMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StoreMode::Off => "off",
            StoreMode::ReadOnly => "ro",
            StoreMode::ReadWrite => "rw",
        })
    }
}

/// The persistent profile store: one directory, one file per
/// [`ProfileKey`].
///
/// All failure modes degrade: a missing or corrupt entry is a miss (the
/// caller re-profiles), an unwritable directory makes `put` a no-op with
/// a warning. The store can slow a run down when broken; it can never
/// change results or abort.
#[derive(Debug, Clone)]
pub struct ProfileStore {
    dir: PathBuf,
    mode: StoreMode,
}

impl ProfileStore {
    /// Default cache location, relative to the working directory.
    pub const DEFAULT_DIR: &'static str = "results/.lp-cache";

    /// Opens (and for [`StoreMode::ReadWrite`], creates) the cache
    /// directory.
    ///
    /// # Errors
    /// Propagates directory-creation failures; callers are expected to
    /// degrade to running without a store.
    pub fn open(dir: impl Into<PathBuf>, mode: StoreMode) -> std::io::Result<ProfileStore> {
        let dir = dir.into();
        if mode == StoreMode::ReadWrite {
            std::fs::create_dir_all(&dir)?;
        }
        Ok(ProfileStore { dir, mode })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's access mode.
    #[must_use]
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    fn path_of(&self, key: ProfileKey) -> PathBuf {
        self.dir.join(format!("{key}.{ENTRY_EXT}"))
    }

    /// Looks `key` up, returning the cached profile and run result on a
    /// hit. Counts `store_hits` / `store_misses` /
    /// `store_corrupt_discarded`; a corrupt entry is deleted (in `rw`
    /// mode), warned about on stderr, and reported as a miss.
    #[must_use]
    pub fn get(&self, key: ProfileKey) -> Option<(Profile, RunResult)> {
        if self.mode == StoreMode::Off {
            return None;
        }
        let _io = span!("store-io");
        let c = lp_obs::counters();
        let path = self.path_of(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                c.add(Counter::StoreMisses, 1);
                return None;
            }
        };
        match decode_entry(&bytes) {
            Ok(entry) => {
                c.add(Counter::StoreHits, 1);
                lp_info!("profile store: hit {key} ({} bytes)", bytes.len());
                Some(entry)
            }
            Err(err) => {
                c.add(Counter::StoreCorruptDiscarded, 1);
                c.add(Counter::StoreMisses, 1);
                eprintln!(
                    "warning: profile store: discarding {} ({err}); re-profiling",
                    path.display()
                );
                if self.mode == StoreMode::ReadWrite {
                    let _ = std::fs::remove_file(&path);
                }
                None
            }
        }
    }

    /// Persists an entry under `key` via write-to-temp + atomic rename.
    /// Best-effort: a no-op in `off`/`ro` modes, and I/O failures warn
    /// instead of propagating.
    pub fn put(&self, key: ProfileKey, profile: &Profile, run: &RunResult) {
        if self.mode != StoreMode::ReadWrite {
            return;
        }
        let _io = span!("store-io");
        let bytes = encode_entry(profile, run);
        let path = self.path_of(key);
        let tmp = self
            .dir
            .join(format!("{key}.{ENTRY_EXT}.tmp{}", std::process::id()));
        let result = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
        match result {
            Ok(()) => lp_info!("profile store: put {key} ({} bytes)", bytes.len()),
            Err(err) => {
                let _ = std::fs::remove_file(&tmp);
                eprintln!(
                    "warning: profile store: failed to write {} ({err})",
                    path.display()
                );
            }
        }
    }

    /// Deletes oldest-modified entries until the cache holds at most
    /// `max_bytes` of entry data. Returns the number of bytes reclaimed.
    ///
    /// The common steady state — a cache already under budget — exits
    /// after one metadata sweep, counted as
    /// [`Counter::StoreGcSkipped`], without sorting or deleting
    /// anything.
    ///
    /// # Errors
    /// Propagates directory-listing failures; individual file errors are
    /// skipped (another process may be collecting concurrently).
    pub fn gc(&self, max_bytes: u64) -> std::io::Result<u64> {
        if self.mode != StoreMode::ReadWrite {
            return Ok(0);
        }
        let _io = span!("store-io");
        let mut entries: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let modified = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            entries.push((path, meta.len(), modified));
        }
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total <= max_bytes {
            lp_obs::counters().add(Counter::StoreGcSkipped, 1);
            return Ok(0);
        }
        // Oldest first; ties broken by path for determinism.
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut reclaimed = 0;
        for (path, len, _) in entries {
            if total <= max_bytes {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
                reclaimed += len;
            }
        }
        Ok(reclaimed)
    }
}

/// Profiles `module` through the store: serve a cached `(Profile,
/// RunResult)` when available, otherwise run the instrumented
/// interpreter and persist the result.
///
/// The store only addresses argument-less entry runs, which is how every
/// study binary profiles; `args` therefore isn't a parameter here.
///
/// # Errors
/// Propagates interpreter traps from the cold path; the cache itself
/// never fails a call.
pub fn profile_module_cached(
    module: &Module,
    analysis: &ModuleAnalysis,
    machine_config: MachineConfig,
    options: ProfilerOptions,
    store: Option<&ProfileStore>,
) -> Result<(Profile, RunResult), lp_interp::InterpError> {
    if let Some(store) = store {
        let key = ProfileKey::of(module, &machine_config, &options);
        if let Some(entry) = store.get(key) {
            return Ok(entry);
        }
        let (profile, run) = profile_module_with(module, analysis, &[], machine_config, options)?;
        store.put(key, &profile, &run);
        return Ok((profile, run));
    }
    profile_module_with(module, analysis, &[], machine_config, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> LoopMeta {
        LoopMeta {
            func: FuncId(2),
            loop_id: LoopId(1),
            func_name: "kernel".to_string(),
            header: BlockId(3),
            depth: 2,
            traced_phis: vec![
                (ValueId(4), LcdClass::Computable(ScevClass::Induction)),
                (ValueId(5), LcdClass::Reduction(BinOp::FAdd)),
                (ValueId(6), LcdClass::NonComputable),
            ],
            computable_phis: 1,
        }
    }

    fn sample_profile() -> Profile {
        let inst = LoopInstance {
            meta: 0,
            iter_starts: vec![10, 20, 35],
            mem_conflict_iters: vec![1, 2],
            mem_max_skew: 7,
            mem_max_producer_rel: 9,
            mem_min_consumer_rel: u64::MAX,
            mem_edges: 4,
            lcds: vec![LcdInstance {
                mispredict_iters: vec![1],
                max_def_rel: 3,
                observed: 2,
                predicted: 1,
            }],
            call_class: CallClass::PureCalls,
        };
        let root = Region {
            parent: None,
            parent_iter: 0,
            start: 0,
            end: 60,
            kind: RegionKind::Call { func: FuncId(0) },
            children: vec![RegionId(1)],
        };
        let body = Region {
            parent: Some(RegionId(0)),
            parent_iter: 0,
            start: 10,
            end: 50,
            kind: RegionKind::Loop(inst),
            children: Vec::new(),
        };
        let meta = sample_meta();
        let meta_index = MetaIndex::from_meta(std::slice::from_ref(&meta));
        Profile {
            program: "demo".to_string(),
            total_cost: 60,
            regions: vec![root, body],
            loop_meta: vec![meta],
            meta_index,
            func_names: vec!["main".to_string(), "aux".to_string(), "kernel".to_string()],
        }
    }

    fn sample_run() -> RunResult {
        RunResult {
            ret: Value::I(-42),
            cost: 60,
            output: vec!["line one".to_string(), "π≈3".to_string()],
        }
    }

    fn assert_profiles_equal(a: &Profile, b: &Profile) {
        // Profile has no PartialEq; compare a rendering that covers every
        // field (MetaIndex::iter is already in ascending key order).
        let fingerprint = |p: &Profile| {
            let idx: Vec<_> = p.meta_index.iter().collect();
            format!(
                "{} {} {:?} {:?} {:?} {idx:?}",
                p.program, p.total_cost, p.regions, p.loop_meta, p.func_names
            )
        };
        assert_eq!(fingerprint(a), fingerprint(b));
    }

    #[test]
    fn entry_round_trips() {
        let profile = sample_profile();
        let run = sample_run();
        let bytes = encode_entry(&profile, &run);
        let (p2, r2) = decode_entry(&bytes).unwrap();
        assert_profiles_equal(&profile, &p2);
        assert_eq!(format!("{run:?}"), format!("{r2:?}"));
        assert_eq!(p2.meta_index.get(2, 1), Some(0));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_entry(&sample_profile(), &sample_run());
        for cut in 0..bytes.len() {
            assert!(
                decode_entry(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_harmless() {
        let bytes = encode_entry(&sample_profile(), &sample_run());
        // Flipping any single bit must either fail to decode (magic /
        // version / checksum / structure) — it can never be silently
        // accepted as different data, because the checksum covers the
        // whole payload and the header fields are validated.
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x40;
            assert!(
                decode_entry(&corrupt).is_err(),
                "bit flip at byte {byte} decoded"
            );
        }
    }

    #[test]
    fn version_mismatch_is_detected() {
        let mut bytes = encode_entry(&sample_profile(), &sample_run());
        bytes[4..8].copy_from_slice(&(PROFILE_FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            decode_entry(&bytes).map(|_| ()).unwrap_err(),
            CodecError::VersionMismatch(PROFILE_FORMAT_VERSION + 1)
        );
    }

    #[test]
    fn huge_length_prefix_does_not_preallocate() {
        // A payload claiming u32::MAX regions must be rejected up front
        // (Truncated), not attempt a gigantic Vec::with_capacity.
        let mut e = Enc::default();
        e.str("p");
        e.u64(0);
        e.u32(u32::MAX); // func_names length
        let payload = e.buf;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&PROFILE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let checksum = fnv1a(&payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            decode_entry(&bytes).map(|_| ()).unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn store_mode_parses() {
        assert_eq!("off".parse(), Ok(StoreMode::Off));
        assert_eq!("ro".parse(), Ok(StoreMode::ReadOnly));
        assert_eq!("rw".parse(), Ok(StoreMode::ReadWrite));
        assert_eq!("RW".parse::<StoreMode>(), Err(()));
        assert_eq!(StoreMode::ReadWrite.to_string(), "rw");
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lp-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_put_get_round_trip_and_corruption_fallback() {
        let dir = scratch_dir("roundtrip");
        let store = ProfileStore::open(&dir, StoreMode::ReadWrite).unwrap();
        let key = ProfileKey(0xDEAD_BEEF_0123_4567);
        assert!(store.get(key).is_none());
        let profile = sample_profile();
        let run = sample_run();
        store.put(key, &profile, &run);
        let (p2, _) = store.get(key).expect("hit after put");
        assert_profiles_equal(&profile, &p2);
        // Corrupt the entry on disk; the store must discard it and miss.
        let path = dir.join(format!("{key}.{ENTRY_EXT}"));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.get(key).is_none());
        assert!(!path.exists(), "corrupt entry should be deleted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_store_never_writes() {
        let dir = scratch_dir("readonly");
        std::fs::create_dir_all(&dir).unwrap();
        let store = ProfileStore::open(&dir, StoreMode::ReadOnly).unwrap();
        let key = ProfileKey(1);
        store.put(key, &sample_profile(), &sample_run());
        assert!(std::fs::read_dir(&dir).unwrap().next().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn off_store_never_reads() {
        let dir = scratch_dir("off");
        let rw = ProfileStore::open(&dir, StoreMode::ReadWrite).unwrap();
        let key = ProfileKey(2);
        rw.put(key, &sample_profile(), &sample_run());
        let off = ProfileStore::open(&dir, StoreMode::Off).unwrap();
        assert!(off.get(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_oldest_until_under_budget() {
        let dir = scratch_dir("gc");
        let store = ProfileStore::open(&dir, StoreMode::ReadWrite).unwrap();
        let profile = sample_profile();
        let run = sample_run();
        for i in 0..3u64 {
            store.put(ProfileKey(i), &profile, &run);
        }
        let entry_len = encode_entry(&profile, &run).len() as u64;
        let reclaimed = store.gc(entry_len * 2).unwrap();
        assert!(reclaimed >= entry_len);
        let remaining = std::fs::read_dir(&dir).unwrap().count();
        assert!(remaining <= 2, "expected <=2 entries, found {remaining}");
        assert_eq!(store.gc(u64::MAX).unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_under_budget_is_a_counted_no_op() {
        let dir = scratch_dir("gc-skip");
        let store = ProfileStore::open(&dir, StoreMode::ReadWrite).unwrap();
        let profile = sample_profile();
        let run = sample_run();
        store.put(ProfileKey(9), &profile, &run);
        let skipped_before = lp_obs::counters().get(Counter::StoreGcSkipped);
        assert_eq!(store.gc(u64::MAX).unwrap(), 0);
        assert_eq!(
            lp_obs::counters().get(Counter::StoreGcSkipped),
            skipped_before + 1,
            "an under-budget gc must count as skipped"
        );
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            1,
            "the entry must survive a skipped gc"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A small counted loop with a reduction, in the canonical text
    /// format.
    const LOOP_SRC: &str = r#"
module "demo"

global @tab = words(3) init [5, 6, 7]

fn @main() -> i64 {
entry:
  br header
header:
  %i: i64 = phi i64 [ entry: i64 0 ], [ body: %i2 ]
  %s: i64 = phi i64 [ entry: i64 0 ], [ body: %s2 ]
  %c: i1 = icmp slt %i, i64 3
  condbr %c, body, exit
body:
  %a: ptr = gep global @tab, %i, scale 8, offset 0
  %x: i64 = load i64, %a
  %s2: i64 = add %s, %x
  %i2: i64 = add %i, i64 1
  br header
exit:
  ret %s
}
"#;

    #[test]
    fn profile_key_is_stable_and_sensitive() {
        let module = lp_ir::parser::parse_module(LOOP_SRC).expect("parse");
        let config = MachineConfig::default();
        let options = ProfilerOptions::default();
        let k1 = ProfileKey::of(&module, &config, &options);
        let k2 = ProfileKey::of(&module, &config, &options);
        assert_eq!(k1, k2, "key must be deterministic");
        let other_config = MachineConfig {
            rng_seed: config.rng_seed ^ 1,
            ..MachineConfig::default()
        };
        assert_ne!(k1, ProfileKey::of(&module, &other_config, &options));
        let other_options = ProfilerOptions {
            cactus_stack: false,
        };
        assert_ne!(k1, ProfileKey::of(&module, &config, &other_options));
        // watched_values must NOT affect the key (derived from module).
        let watched = MachineConfig {
            watched_values: vec![(FuncId(0), ValueId(0))],
            ..MachineConfig::default()
        };
        assert_eq!(k1, ProfileKey::of(&module, &watched, &options));
        // The engine must NOT affect the key either: both engines produce
        // byte-identical profiles, so cache entries are engine-portable.
        let bc = MachineConfig {
            engine: lp_interp::Engine::Bc,
            ..MachineConfig::default()
        };
        assert_eq!(k1, ProfileKey::of(&module, &bc, &options));
    }

    #[test]
    fn profile_module_cached_hits_on_second_call() {
        let module = lp_ir::parser::parse_module(LOOP_SRC).expect("parse");
        let analysis = lp_analysis::analyze_module(&module);
        let dir = scratch_dir("cached");
        let store = ProfileStore::open(&dir, StoreMode::ReadWrite).unwrap();
        let config = MachineConfig::default();
        let options = ProfilerOptions::default();
        let (cold_p, cold_r) =
            profile_module_cached(&module, &analysis, config.clone(), options, Some(&store))
                .unwrap();
        let (warm_p, warm_r) =
            profile_module_cached(&module, &analysis, config, options, Some(&store)).unwrap();
        assert_profiles_equal(&cold_p, &warm_p);
        assert_eq!(format!("{cold_r:?}"), format!("{warm_r:?}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
