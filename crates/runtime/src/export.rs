//! CSV, JSON, and collapsed-stack export of evaluation results — the
//! machine-readable companions to the pretty-printing binaries, for
//! plotting the figures (and flamegraphs) with external tools.
//!
//! Everything JSON goes through [`lp_obs::JsonWriter`] (the workspace's
//! single escaper) behind the [`Export`] trait: an exportable value
//! streams itself into a writer, and `to_json` / `to_json_pretty` pick
//! the rendering.

use crate::census::Census;
use crate::eval::EvalReport;
use crate::explain::{Attribution, Limiter};
use crate::profile::{Profile, RegionKind};
use lp_obs::JsonWriter;
use std::fmt::Write;

/// A value that can render itself as a JSON document through the shared
/// [`JsonWriter`].
///
/// Implementors stream exactly one JSON value into the writer; the
/// provided methods wrap that in a compact (machine, byte-stable) or
/// pretty (human) document.
pub trait Export {
    /// Streams `self` into `w` as one JSON value.
    fn write_json(&self, w: &mut JsonWriter);

    /// Renders the compact document (no whitespace; byte-identical to
    /// the historical hand-rolled emitters).
    #[must_use]
    fn to_json(&self) -> String {
        let mut w = JsonWriter::compact();
        self.write_json(&mut w);
        w.finish()
    }

    /// Renders the indented document for human inspection.
    #[must_use]
    fn to_json_pretty(&self) -> String {
        let mut w = JsonWriter::pretty();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Escapes one CSV field (quotes when needed).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Header row for [`report_row`].
#[must_use]
pub fn report_header() -> String {
    "program,model,config,total_cost,best_cost,speedup,coverage_pct".to_string()
}

/// One CSV row for an evaluation report.
#[must_use]
pub fn report_row(report: &EvalReport) -> String {
    format!(
        "{},{},{},{},{},{:.6},{:.3}",
        field(&report.program),
        report.model,
        report.config,
        report.total_cost,
        report.best_cost,
        report.speedup,
        report.coverage
    )
}

/// Renders many reports as a full CSV document.
#[must_use]
pub fn reports_to_csv(reports: &[EvalReport]) -> String {
    let mut out = report_header();
    out.push('\n');
    for r in reports {
        out.push_str(&report_row(r));
        out.push('\n');
    }
    out
}

/// Per-loop detail rows for one report (program, loop identity, costs).
#[must_use]
pub fn loops_to_csv(report: &EvalReport) -> String {
    let mut out = String::from(
        "program,model,config,function,header,depth,instances,parallel_instances,iterations,serial_cost,best_cost,loop_speedup\n",
    );
    for l in &report.loops {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{:.6}",
            field(&report.program),
            report.model,
            report.config,
            field(&l.func_name),
            l.header,
            l.depth,
            l.instances,
            l.parallel_instances,
            l.iterations,
            l.serial_cost,
            l.best_cost,
            l.speedup()
        );
    }
    out
}

/// A sweep result set as an exportable document: one object per
/// evaluation point, in the order given (the sweep engine's
/// deterministic `(unit, model, config)` order), so the document is
/// byte-identical for any worker count. Validates against
/// [`lp_obs::validate_json`].
#[derive(Debug, Clone, Copy)]
pub struct SweepExport<'a>(pub &'a [EvalReport]);

impl Export for SweepExport<'_> {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("sweep");
        w.begin_array();
        for r in self.0 {
            w.begin_object();
            w.key("program");
            w.string(&r.program);
            w.key("model");
            w.string(&r.model.to_string());
            w.key("config");
            w.string(&r.config.to_string());
            w.key("total_cost");
            w.uint(r.total_cost);
            w.key("best_cost");
            w.uint(r.best_cost);
            w.key("speedup");
            w.fixed(r.speedup, 6);
            w.key("coverage_pct");
            w.fixed(r.coverage, 3);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
}

fn write_limiter(w: &mut JsonWriter, lim: &Limiter, best: u64) {
    w.begin_object();
    w.key("kind");
    w.string(lim.kind.name());
    w.key("weight");
    w.uint(lim.weight);
    w.key("savings");
    w.uint(lim.savings);
    w.key("instances");
    w.uint(lim.instances);
    w.key("unlock_factor");
    w.fixed(lim.unlock_factor(best), 4);
    w.key("describes");
    w.string(lim.kind.describe());
    w.end_object();
}

/// `explain.json`: the full attribution document. Validates against
/// [`lp_obs::validate_json`].
impl Export for Attribution {
    fn write_json(&self, w: &mut JsonWriter) {
        let speedup = self.total_cost.max(1) as f64 / self.best_cost.max(1) as f64;
        w.begin_object();
        w.key("program");
        w.string(&self.program);
        w.key("model");
        w.string(&self.model.to_string());
        w.key("config");
        w.string(&self.config.to_string());
        w.key("total_cost");
        w.uint(self.total_cost);
        w.key("best_cost");
        w.uint(self.best_cost);
        w.key("speedup");
        w.fixed(speedup, 6);
        w.key("total_gap");
        w.uint(self.total_gap());
        w.key("limiters");
        w.begin_array();
        for lim in &self.limiters {
            write_limiter(w, lim, self.best_cost);
        }
        w.end_array();
        w.key("loops");
        w.begin_array();
        for l in &self.loops {
            w.begin_object();
            w.key("function");
            w.string(&l.func_name);
            w.key("header");
            w.string(&l.header.to_string());
            w.key("depth");
            w.uint(u64::from(l.depth));
            w.key("verdict");
            w.string(l.verdict());
            w.key("instances");
            w.uint(l.instances);
            w.key("parallel_instances");
            w.uint(l.parallel_instances);
            w.key("serial_cost");
            w.uint(l.serial_cost);
            w.key("best_cost");
            w.uint(l.best_cost);
            w.key("ideal_cost");
            w.uint(l.ideal_cost);
            w.key("gap");
            w.uint(l.gap);
            w.key("limiters");
            w.begin_array();
            for lim in &l.limiters {
                write_limiter(w, lim, l.best_cost);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
}

/// Sanitizes one collapsed-stack frame name (the format reserves `;` as
/// the frame separator and the final space as the weight separator).
fn frame(s: &str) -> String {
    s.replace([';', ' '], "_")
}

/// Flamegraph-compatible collapsed stacks of the dynamic region tree:
/// one line per region, `frame;frame;... weight`, where frames are the
/// function/loop-header nesting, the weight is the region's *exclusive*
/// dynamic IR instructions, and each loop frame is annotated
/// `_[serial]`/`_[parallel]` from the attribution's per-region verdict.
/// Exclusive weights telescope: the emitted weights sum to the profile's
/// `total_cost`, making coverage (Fig. 5) visually inspectable in any
/// flamegraph viewer.
#[must_use]
pub fn collapsed_stacks(profile: &Profile, attr: &Attribution) -> String {
    let mut out = String::new();
    let mut stack: Vec<String> = Vec::new();
    emit_region(profile, attr, 0, &mut stack, &mut out);
    out
}

fn emit_region(
    profile: &Profile,
    attr: &Attribution,
    idx: usize,
    stack: &mut Vec<String>,
    out: &mut String,
) {
    let region = &profile.regions[idx];
    let name = match &region.kind {
        RegionKind::Call { func } => frame(
            profile
                .func_names
                .get(func.index())
                .map_or("<unknown>", String::as_str),
        ),
        RegionKind::Loop(inst) => {
            let meta = &profile.loop_meta[inst.meta];
            let verdict = if attr.region_parallel.get(idx).copied().unwrap_or(false) {
                "parallel"
            } else {
                "serial"
            };
            format!(
                "loop@{}:{}_[{verdict}]",
                frame(&meta.func_name),
                meta.header
            )
        }
    };
    stack.push(name);
    let child_cost: u64 = region
        .children
        .iter()
        .map(|c| profile.regions[c.index()].serial_cost())
        .sum();
    let exclusive = region.serial_cost().saturating_sub(child_cost);
    if exclusive > 0 {
        let _ = writeln!(out, "{} {exclusive}", stack.join(";"));
    }
    for c in &region.children {
        emit_region(profile, attr, c.index(), stack, out);
    }
    stack.pop();
}

/// The census as a two-column CSV (category, count).
#[must_use]
pub fn census_to_csv(census: &Census) -> String {
    let rows: [(&str, u64); 11] = [
        ("programs", census.programs),
        ("executed_loops", census.executed_loops),
        ("computable_lcds", census.computable),
        ("reduction_lcds", census.reductions),
        ("predictable_lcds", census.predictable),
        ("unpredictable_lcds", census.unpredictable),
        ("frequent_mem_loops", census.frequent_mem_loops),
        ("infrequent_mem_loops", census.infrequent_mem_loops),
        ("no_mem_lcd_loops", census.no_mem_lcd_loops),
        ("loops_with_calls", census.loops_with_calls),
        ("loops_with_unsafe_calls", census.loops_with_unsafe_calls),
    ];
    let mut out = String::from("category,count\n");
    for (k, v) in rows {
        let _ = writeln!(out, "{k},{v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, ExecModel};
    use crate::eval::evaluate;
    use crate::tracker::profile_module;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{IcmpPred, Module, Type};

    fn tiny_report() -> EvalReport {
        let mut m = Module::new("csv,program"); // comma forces quoting
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(4);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        m.add_function(fb.finish().unwrap());
        let analysis = analyze_module(&m);
        let (p, _) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
        evaluate(&p, ExecModel::Doall, Config::all()[0])
    }

    #[test]
    fn csv_rows_have_matching_column_counts() {
        let r = tiny_report();
        let csv = reports_to_csv(std::slice::from_ref(&r));
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        // The quoted program name contains a comma; count naive splits on
        // the header only and check the data row by parsing quotes.
        assert_eq!(header_cols, 7);
        let row = lines.next().unwrap();
        assert!(row.starts_with("\"csv,program\""), "{row}");
        assert!(row.contains("DOALL"));
    }

    #[test]
    fn loop_rows_render() {
        let r = tiny_report();
        let csv = loops_to_csv(&r);
        assert!(csv.lines().count() >= 2);
        assert!(csv.contains("main"));
    }

    #[test]
    fn sweep_json_is_valid_and_ordered() {
        let r = tiny_report();
        let json = SweepExport(&[r.clone(), r]).to_json();
        lp_obs::validate_json(&json).expect("sweep.json must be valid");
        assert!(json.starts_with("{\"sweep\":["), "{json}");
        assert_eq!(json.matches("\"program\"").count(), 2);
        assert!(json.contains("\"coverage_pct\""));
    }

    #[test]
    fn pretty_export_is_valid_json_with_same_content() {
        let (_, attr) = tiny_explained();
        let pretty = attr.to_json_pretty();
        lp_obs::validate_json(&pretty).expect("pretty explain.json must be valid");
        // Same document modulo whitespace: stripping all spaces/newlines
        // outside strings is overkill here — the field set is enough.
        assert!(pretty.contains("\"limiters\": ["));
        assert_eq!(
            pretty.matches("\"kind\"").count(),
            attr.to_json().matches("\"kind\"").count()
        );
    }

    #[test]
    fn census_csv_is_complete() {
        let csv = census_to_csv(&Census::default());
        assert_eq!(csv.lines().count(), 12); // header + 11 categories
        assert!(csv.contains("reduction_lcds,0"));
    }

    fn tiny_explained() -> (crate::profile::Profile, Attribution) {
        let mut m = Module::new("explain");
        let g = m.add_global(lp_ir::Global::zeroed("cell", 1));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(8);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let cell = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let v = fb.load(Type::I64, cell);
        let v2 = fb.add(v, one);
        fb.store(v2, cell);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        m.add_function(fb.finish().unwrap());
        let analysis = analyze_module(&m);
        let (p, _) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
        let (_, attr) = crate::eval::evaluate_explained(&p, ExecModel::Doall, Config::all()[0]);
        (p, attr)
    }

    #[test]
    fn attribution_json_is_valid_and_names_the_limiter() {
        let (_, attr) = tiny_explained();
        let json = attr.to_json();
        lp_obs::validate_json(&json).expect("explain.json must be valid");
        assert!(json.contains("\"kind\":\"memory-raw\""), "{json}");
        assert!(json.contains("\"verdict\":\"serial\""), "{json}");
        assert!(json.contains("\"function\":\"main\""), "{json}");
    }

    #[test]
    fn collapsed_stacks_weights_sum_to_total_cost() {
        let (p, attr) = tiny_explained();
        let collapsed = collapsed_stacks(&p, &attr);
        let mut sum = 0u64;
        for line in collapsed.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("frame weight");
            assert!(!stack.is_empty());
            sum += weight.parse::<u64>().unwrap();
        }
        assert_eq!(sum, p.total_cost, "exclusive weights must telescope");
        assert!(collapsed.starts_with("main "), "{collapsed}");
        assert!(
            collapsed.contains("main;loop@main:b1_[serial] "),
            "{collapsed}"
        );
    }

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
