//! CSV export of evaluation results — the machine-readable companion to
//! the pretty-printing binaries, for plotting the figures with external
//! tools.

use crate::census::Census;
use crate::eval::EvalReport;
use std::fmt::Write;

/// Escapes one CSV field (quotes when needed).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Header row for [`report_row`].
#[must_use]
pub fn report_header() -> String {
    "program,model,config,total_cost,best_cost,speedup,coverage_pct".to_string()
}

/// One CSV row for an evaluation report.
#[must_use]
pub fn report_row(report: &EvalReport) -> String {
    format!(
        "{},{},{},{},{},{:.6},{:.3}",
        field(&report.program),
        report.model,
        report.config,
        report.total_cost,
        report.best_cost,
        report.speedup,
        report.coverage
    )
}

/// Renders many reports as a full CSV document.
#[must_use]
pub fn reports_to_csv(reports: &[EvalReport]) -> String {
    let mut out = report_header();
    out.push('\n');
    for r in reports {
        out.push_str(&report_row(r));
        out.push('\n');
    }
    out
}

/// Per-loop detail rows for one report (program, loop identity, costs).
#[must_use]
pub fn loops_to_csv(report: &EvalReport) -> String {
    let mut out = String::from(
        "program,model,config,function,header,depth,instances,parallel_instances,iterations,serial_cost,best_cost,loop_speedup\n",
    );
    for l in &report.loops {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{:.6}",
            field(&report.program),
            report.model,
            report.config,
            field(&l.func_name),
            l.header,
            l.depth,
            l.instances,
            l.parallel_instances,
            l.iterations,
            l.serial_cost,
            l.best_cost,
            l.speedup()
        );
    }
    out
}

/// The census as a two-column CSV (category, count).
#[must_use]
pub fn census_to_csv(census: &Census) -> String {
    let rows: [(&str, u64); 11] = [
        ("programs", census.programs),
        ("executed_loops", census.executed_loops),
        ("computable_lcds", census.computable),
        ("reduction_lcds", census.reductions),
        ("predictable_lcds", census.predictable),
        ("unpredictable_lcds", census.unpredictable),
        ("frequent_mem_loops", census.frequent_mem_loops),
        ("infrequent_mem_loops", census.infrequent_mem_loops),
        ("no_mem_lcd_loops", census.no_mem_lcd_loops),
        ("loops_with_calls", census.loops_with_calls),
        ("loops_with_unsafe_calls", census.loops_with_unsafe_calls),
    ];
    let mut out = String::from("category,count\n");
    for (k, v) in rows {
        let _ = writeln!(out, "{k},{v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, ExecModel};
    use crate::eval::evaluate;
    use crate::tracker::profile_module;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{IcmpPred, Module, Type};

    fn tiny_report() -> EvalReport {
        let mut m = Module::new("csv,program"); // comma forces quoting
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(4);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        m.add_function(fb.finish().unwrap());
        let analysis = analyze_module(&m);
        let (p, _) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
        evaluate(&p, ExecModel::Doall, Config::all()[0])
    }

    #[test]
    fn csv_rows_have_matching_column_counts() {
        let r = tiny_report();
        let csv = reports_to_csv(std::slice::from_ref(&r));
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        // The quoted program name contains a comma; count naive splits on
        // the header only and check the data row by parsing quotes.
        assert_eq!(header_cols, 7);
        let row = lines.next().unwrap();
        assert!(row.starts_with("\"csv,program\""), "{row}");
        assert!(row.contains("DOALL"));
    }

    #[test]
    fn loop_rows_render() {
        let r = tiny_report();
        let csv = loops_to_csv(&r);
        assert!(csv.lines().count() >= 2);
        assert!(csv.contains("main"));
    }

    #[test]
    fn census_csv_is_complete() {
        let csv = census_to_csv(&Census::default());
        assert_eq!(csv.lines().count(), 12); // header + 11 categories
        assert!(csv.contains("reduction_lcds,0"));
    }

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
