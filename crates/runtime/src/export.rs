//! CSV, JSON, and collapsed-stack export of evaluation results — the
//! machine-readable companions to the pretty-printing binaries, for
//! plotting the figures (and flamegraphs) with external tools.

use crate::census::Census;
use crate::eval::EvalReport;
use crate::explain::{Attribution, Limiter};
use crate::profile::{Profile, RegionKind};
use lp_obs::json_escape;
use std::fmt::Write;

/// Escapes one CSV field (quotes when needed).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Header row for [`report_row`].
#[must_use]
pub fn report_header() -> String {
    "program,model,config,total_cost,best_cost,speedup,coverage_pct".to_string()
}

/// One CSV row for an evaluation report.
#[must_use]
pub fn report_row(report: &EvalReport) -> String {
    format!(
        "{},{},{},{},{},{:.6},{:.3}",
        field(&report.program),
        report.model,
        report.config,
        report.total_cost,
        report.best_cost,
        report.speedup,
        report.coverage
    )
}

/// Renders many reports as a full CSV document.
#[must_use]
pub fn reports_to_csv(reports: &[EvalReport]) -> String {
    let mut out = report_header();
    out.push('\n');
    for r in reports {
        out.push_str(&report_row(r));
        out.push('\n');
    }
    out
}

/// Per-loop detail rows for one report (program, loop identity, costs).
#[must_use]
pub fn loops_to_csv(report: &EvalReport) -> String {
    let mut out = String::from(
        "program,model,config,function,header,depth,instances,parallel_instances,iterations,serial_cost,best_cost,loop_speedup\n",
    );
    for l in &report.loops {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{:.6}",
            field(&report.program),
            report.model,
            report.config,
            field(&l.func_name),
            l.header,
            l.depth,
            l.instances,
            l.parallel_instances,
            l.iterations,
            l.serial_cost,
            l.best_cost,
            l.speedup()
        );
    }
    out
}

/// Hand-rolled `sweep.json`: one object per evaluation point, in the
/// order given (the sweep engine's deterministic `(unit, model, config)`
/// order), so the document is byte-identical for any worker count.
/// Validates against [`lp_obs::validate_json`].
#[must_use]
pub fn sweep_to_json(reports: &[EvalReport]) -> String {
    let mut out = String::from("{\"sweep\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"program\":\"{}\",\"model\":\"{}\",\"config\":\"{}\",\
             \"total_cost\":{},\"best_cost\":{},\"speedup\":{:.6},\"coverage_pct\":{:.3}}}",
            json_escape(&r.program),
            r.model,
            r.config,
            r.total_cost,
            r.best_cost,
            r.speedup,
            r.coverage,
        );
    }
    out.push_str("]}");
    out
}

fn limiter_json(out: &mut String, lim: &Limiter, best: u64) {
    let _ = write!(
        out,
        "{{\"kind\":\"{}\",\"weight\":{},\"savings\":{},\"instances\":{},\
         \"unlock_factor\":{:.4},\"describes\":\"{}\"}}",
        json_escape(lim.kind.name()),
        lim.weight,
        lim.savings,
        lim.instances,
        lim.unlock_factor(best),
        json_escape(lim.kind.describe()),
    );
}

/// Hand-rolled `explain.json`: the full [`Attribution`] following the
/// workspace's no-serde escaper conventions. Validates against
/// [`lp_obs::validate_json`].
#[must_use]
pub fn attribution_to_json(attr: &Attribution) -> String {
    let mut out = String::from("{");
    let speedup = attr.total_cost.max(1) as f64 / attr.best_cost.max(1) as f64;
    let _ = write!(
        out,
        "\"program\":\"{}\",\"model\":\"{}\",\"config\":\"{}\",\
         \"total_cost\":{},\"best_cost\":{},\"speedup\":{speedup:.6},\"total_gap\":{}",
        json_escape(&attr.program),
        attr.model,
        attr.config,
        attr.total_cost,
        attr.best_cost,
        attr.total_gap(),
    );
    out.push_str(",\"limiters\":[");
    for (i, lim) in attr.limiters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        limiter_json(&mut out, lim, attr.best_cost);
    }
    out.push_str("],\"loops\":[");
    for (i, l) in attr.loops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"function\":\"{}\",\"header\":\"{}\",\"depth\":{},\"verdict\":\"{}\",\
             \"instances\":{},\"parallel_instances\":{},\"serial_cost\":{},\
             \"best_cost\":{},\"ideal_cost\":{},\"gap\":{},\"limiters\":[",
            json_escape(&l.func_name),
            l.header,
            l.depth,
            l.verdict(),
            l.instances,
            l.parallel_instances,
            l.serial_cost,
            l.best_cost,
            l.ideal_cost,
            l.gap,
        );
        for (j, lim) in l.limiters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            limiter_json(&mut out, lim, l.best_cost);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Sanitizes one collapsed-stack frame name (the format reserves `;` as
/// the frame separator and the final space as the weight separator).
fn frame(s: &str) -> String {
    s.replace([';', ' '], "_")
}

/// Flamegraph-compatible collapsed stacks of the dynamic region tree:
/// one line per region, `frame;frame;... weight`, where frames are the
/// function/loop-header nesting, the weight is the region's *exclusive*
/// dynamic IR instructions, and each loop frame is annotated
/// `_[serial]`/`_[parallel]` from the attribution's per-region verdict.
/// Exclusive weights telescope: the emitted weights sum to the profile's
/// `total_cost`, making coverage (Fig. 5) visually inspectable in any
/// flamegraph viewer.
#[must_use]
pub fn collapsed_stacks(profile: &Profile, attr: &Attribution) -> String {
    let mut out = String::new();
    let mut stack: Vec<String> = Vec::new();
    emit_region(profile, attr, 0, &mut stack, &mut out);
    out
}

fn emit_region(
    profile: &Profile,
    attr: &Attribution,
    idx: usize,
    stack: &mut Vec<String>,
    out: &mut String,
) {
    let region = &profile.regions[idx];
    let name = match &region.kind {
        RegionKind::Call { func } => frame(
            profile
                .func_names
                .get(func.index())
                .map_or("<unknown>", String::as_str),
        ),
        RegionKind::Loop(inst) => {
            let meta = &profile.loop_meta[inst.meta];
            let verdict = if attr.region_parallel.get(idx).copied().unwrap_or(false) {
                "parallel"
            } else {
                "serial"
            };
            format!(
                "loop@{}:{}_[{verdict}]",
                frame(&meta.func_name),
                meta.header
            )
        }
    };
    stack.push(name);
    let child_cost: u64 = region
        .children
        .iter()
        .map(|c| profile.regions[c.index()].serial_cost())
        .sum();
    let exclusive = region.serial_cost().saturating_sub(child_cost);
    if exclusive > 0 {
        let _ = writeln!(out, "{} {exclusive}", stack.join(";"));
    }
    for c in &region.children {
        emit_region(profile, attr, c.index(), stack, out);
    }
    stack.pop();
}

/// The census as a two-column CSV (category, count).
#[must_use]
pub fn census_to_csv(census: &Census) -> String {
    let rows: [(&str, u64); 11] = [
        ("programs", census.programs),
        ("executed_loops", census.executed_loops),
        ("computable_lcds", census.computable),
        ("reduction_lcds", census.reductions),
        ("predictable_lcds", census.predictable),
        ("unpredictable_lcds", census.unpredictable),
        ("frequent_mem_loops", census.frequent_mem_loops),
        ("infrequent_mem_loops", census.infrequent_mem_loops),
        ("no_mem_lcd_loops", census.no_mem_lcd_loops),
        ("loops_with_calls", census.loops_with_calls),
        ("loops_with_unsafe_calls", census.loops_with_unsafe_calls),
    ];
    let mut out = String::from("category,count\n");
    for (k, v) in rows {
        let _ = writeln!(out, "{k},{v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, ExecModel};
    use crate::eval::evaluate;
    use crate::tracker::profile_module;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{IcmpPred, Module, Type};

    fn tiny_report() -> EvalReport {
        let mut m = Module::new("csv,program"); // comma forces quoting
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(4);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        m.add_function(fb.finish().unwrap());
        let analysis = analyze_module(&m);
        let (p, _) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
        evaluate(&p, ExecModel::Doall, Config::all()[0])
    }

    #[test]
    fn csv_rows_have_matching_column_counts() {
        let r = tiny_report();
        let csv = reports_to_csv(std::slice::from_ref(&r));
        let mut lines = csv.lines();
        let header_cols = lines.next().unwrap().split(',').count();
        // The quoted program name contains a comma; count naive splits on
        // the header only and check the data row by parsing quotes.
        assert_eq!(header_cols, 7);
        let row = lines.next().unwrap();
        assert!(row.starts_with("\"csv,program\""), "{row}");
        assert!(row.contains("DOALL"));
    }

    #[test]
    fn loop_rows_render() {
        let r = tiny_report();
        let csv = loops_to_csv(&r);
        assert!(csv.lines().count() >= 2);
        assert!(csv.contains("main"));
    }

    #[test]
    fn sweep_json_is_valid_and_ordered() {
        let r = tiny_report();
        let json = sweep_to_json(&[r.clone(), r]);
        lp_obs::validate_json(&json).expect("sweep.json must be valid");
        assert!(json.starts_with("{\"sweep\":["), "{json}");
        assert_eq!(json.matches("\"program\"").count(), 2);
        assert!(json.contains("\"coverage_pct\""));
    }

    #[test]
    fn census_csv_is_complete() {
        let csv = census_to_csv(&Census::default());
        assert_eq!(csv.lines().count(), 12); // header + 11 categories
        assert!(csv.contains("reduction_lcds,0"));
    }

    fn tiny_explained() -> (crate::profile::Profile, Attribution) {
        let mut m = Module::new("explain");
        let g = m.add_global(lp_ir::Global::zeroed("cell", 1));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(8);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let cell = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let v = fb.load(Type::I64, cell);
        let v2 = fb.add(v, one);
        fb.store(v2, cell);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        m.add_function(fb.finish().unwrap());
        let analysis = analyze_module(&m);
        let (p, _) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
        let (_, attr) = crate::eval::evaluate_explained(&p, ExecModel::Doall, Config::all()[0]);
        (p, attr)
    }

    #[test]
    fn attribution_json_is_valid_and_names_the_limiter() {
        let (_, attr) = tiny_explained();
        let json = attribution_to_json(&attr);
        lp_obs::validate_json(&json).expect("explain.json must be valid");
        assert!(json.contains("\"kind\":\"memory-raw\""), "{json}");
        assert!(json.contains("\"verdict\":\"serial\""), "{json}");
        assert!(json.contains("\"function\":\"main\""), "{json}");
    }

    #[test]
    fn collapsed_stacks_weights_sum_to_total_cost() {
        let (p, attr) = tiny_explained();
        let collapsed = collapsed_stacks(&p, &attr);
        let mut sum = 0u64;
        for line in collapsed.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("frame weight");
            assert!(!stack.is_empty());
            sum += weight.parse::<u64>().unwrap();
        }
        assert_eq!(sum, p.total_cost, "exclusive weights must telescope");
        assert!(collapsed.starts_with("main "), "{collapsed}");
        assert!(
            collapsed.contains("main;loop@main:b1_[serial] "),
            "{collapsed}"
        );
    }

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
