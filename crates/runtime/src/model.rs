//! Parallel-execution cost models (paper §III-B, Fig. 1).
//!
//! All three models consume the per-iteration (inner-savings-adjusted)
//! lengths of one loop instance and return the modelled parallel cost, or
//! `None` when the model marks the loop sequential. The caller compares
//! against the loop's sequential cost and keeps the minimum — loops where
//! parallel execution would not help are "marked as serial" exactly as in
//! the paper.

/// DOALL: all iterations start together; any conflict abandons
/// parallelization. The loop cost is the slowest iteration.
///
/// `forced_serial` covers non-computable register LCDs and disallowed
/// calls; `has_conflicts` covers memory RAW conflicts.
#[must_use]
pub fn doall_cost(iter_lens: &[u64], has_conflicts: bool, forced_serial: bool) -> Option<u64> {
    if forced_serial || has_conflicts || iter_lens.is_empty() {
        return None;
    }
    iter_lens.iter().copied().max()
}

/// Fraction of conflicting iterations above which Partial-DOALL marks the
/// loop sequential (paper §III-B: 80 %).
pub const PDOALL_CONFLICT_LIMIT: f64 = 0.8;

/// Partial-DOALL: a conflict at iteration `k` delays the start of `k` (and
/// everything younger) to the end of the slowest iteration of the previous
/// conflict-free phase; tracking then restarts.
///
/// `conflicts` must be sorted ascending (iteration indices). Returns
/// `None` (sequential) when conflicting iterations exceed
/// [`PDOALL_CONFLICT_LIMIT`] of the total.
#[must_use]
pub fn pdoall_cost(iter_lens: &[u64], conflicts: &[u32], forced_serial: bool) -> Option<u64> {
    if forced_serial || iter_lens.is_empty() {
        return None;
    }
    let n = iter_lens.len();
    if conflicts.len() as f64 > PDOALL_CONFLICT_LIMIT * n as f64 {
        return None;
    }
    let mut cost = 0u64;
    let mut phase_longest = 0u64;
    let mut ci = 0usize;
    for (k, &len) in iter_lens.iter().enumerate() {
        if ci < conflicts.len() && conflicts[ci] as usize == k {
            ci += 1;
            cost += phase_longest;
            phase_longest = 0;
        }
        phase_longest = phase_longest.max(len);
    }
    Some(cost + phase_longest)
}

/// HELIX-style generalized DOACROSS:
/// `cost = slowest_iteration + delta_largest × num_iterations`.
///
/// `delta_largest` is the largest producer→consumer timestamp skew over
/// all manifesting LCDs (memory RAW edges, plus register LCDs lowered to
/// memory under `dep1`).
#[must_use]
pub fn helix_cost(iter_lens: &[u64], delta_largest: u64, forced_serial: bool) -> Option<u64> {
    if forced_serial || iter_lens.is_empty() {
        return None;
    }
    let slowest = iter_lens.iter().copied().max().unwrap_or(0);
    Some(slowest + delta_largest * iter_lens.len() as u64)
}

/// Bounded-core DOALL: iterations are dispatched in order in waves of
/// `cores`; the loop cost is the sum over waves of the slowest iteration
/// in each wave. `cores = None` means unbounded (the limit study).
#[must_use]
pub fn doall_cost_bounded(
    iter_lens: &[u64],
    has_conflicts: bool,
    forced_serial: bool,
    cores: Option<u32>,
) -> Option<u64> {
    if forced_serial || has_conflicts || iter_lens.is_empty() {
        return None;
    }
    Some(wave_cost(iter_lens, cores))
}

/// Bounded-core Partial-DOALL: wave scheduling applies within each
/// conflict-free phase.
#[must_use]
pub fn pdoall_cost_bounded(
    iter_lens: &[u64],
    conflicts: &[u32],
    forced_serial: bool,
    cores: Option<u32>,
) -> Option<u64> {
    if forced_serial || iter_lens.is_empty() {
        return None;
    }
    let n = iter_lens.len();
    if conflicts.len() as f64 > PDOALL_CONFLICT_LIMIT * n as f64 {
        return None;
    }
    let mut cost = 0u64;
    let mut phase: Vec<u64> = Vec::new();
    let mut ci = 0usize;
    for (k, &len) in iter_lens.iter().enumerate() {
        if ci < conflicts.len() && conflicts[ci] as usize == k {
            ci += 1;
            cost += wave_cost(&phase, cores);
            phase.clear();
        }
        phase.push(len);
    }
    Some(cost + wave_cost(&phase, cores))
}

/// Bounded-core HELIX: iteration `i` starts no earlier than `i × delta`
/// (synchronization) and no earlier than the finish of iteration `i −
/// cores` (core reuse).
#[must_use]
pub fn helix_cost_bounded(
    iter_lens: &[u64],
    delta_largest: u64,
    forced_serial: bool,
    cores: Option<u32>,
) -> Option<u64> {
    if forced_serial || iter_lens.is_empty() {
        return None;
    }
    let Some(p) = cores else {
        return helix_cost(iter_lens, delta_largest, forced_serial);
    };
    let p = p.max(1) as usize;
    let mut finish: Vec<u64> = Vec::with_capacity(iter_lens.len());
    let mut latest = 0u64;
    for (i, &len) in iter_lens.iter().enumerate() {
        let sync_ready = i as u64 * delta_largest;
        let core_ready = if i >= p { finish[i - p] } else { 0 };
        let start = sync_ready.max(core_ready);
        let f = start + len;
        finish.push(f);
        latest = latest.max(f);
    }
    Some(latest)
}

/// The conflict-free ("ideal") cost of a loop instance: pure wave
/// dispatch of its iteration lengths with no dependence of any kind.
/// This is the floor the attribution layer measures every model's gap
/// against — `doall_cost_bounded` with no conflicts and no forcing
/// reduces to exactly this.
#[must_use]
pub fn ideal_cost(iter_lens: &[u64], cores: Option<u32>) -> u64 {
    wave_cost(iter_lens, cores)
}

/// Dispatches `lens` in order over waves of `cores` (unbounded when
/// `None`): the cost of a conflict-free parallel region.
fn wave_cost(lens: &[u64], cores: Option<u32>) -> u64 {
    if lens.is_empty() {
        return 0;
    }
    match cores {
        None => lens.iter().copied().max().unwrap_or(0),
        Some(p) => {
            let p = p.max(1) as usize;
            lens.chunks(p)
                .map(|wave| wave.iter().copied().max().unwrap_or(0))
                .sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doall_takes_slowest_iteration() {
        assert_eq!(doall_cost(&[5, 9, 3], false, false), Some(9));
        assert_eq!(doall_cost(&[5, 9, 3], true, false), None);
        assert_eq!(doall_cost(&[5, 9, 3], false, true), None);
        assert_eq!(doall_cost(&[], false, false), None);
    }

    #[test]
    fn pdoall_no_conflicts_equals_doall() {
        let lens = [4u64, 7, 2, 6];
        assert_eq!(
            pdoall_cost(&lens, &[], false),
            doall_cost(&lens, false, false)
        );
    }

    #[test]
    fn pdoall_phases_add_up() {
        // Iterations of length 10 each; conflicts at iterations 2 and 4 of
        // 6 total: phases {0,1}, {2,3}, {4,5} -> 3 phases x 10.
        let lens = [10u64; 6];
        assert_eq!(pdoall_cost(&lens, &[2, 4], false), Some(30));
    }

    #[test]
    fn pdoall_conflict_at_first_tracked_iteration() {
        // A conflict at iteration 0 cannot happen (nothing older), but at
        // iteration 1 the first phase is just iteration 0.
        let lens = [5u64, 5, 5];
        assert_eq!(pdoall_cost(&lens, &[1], false), Some(10));
    }

    #[test]
    fn pdoall_eighty_percent_rule() {
        let lens = [1u64; 10];
        let conflicts: Vec<u32> = (1..=8).collect(); // exactly 80%: allowed
        assert!(pdoall_cost(&lens, &conflicts, false).is_some());
        let conflicts: Vec<u32> = (1..=9).collect(); // 90%: sequential
        assert_eq!(pdoall_cost(&lens, &conflicts, false), None);
    }

    #[test]
    fn pdoall_every_iteration_conflicting_degenerates_to_serial_sum() {
        // With conflicts on all of 1..n, each phase is one iteration: the
        // cost equals the serial sum (before the 80% rule would even fire
        // for small n). For n=3, 2 conflicts of 3 iterations = 66% < 80%.
        let lens = [7u64, 7, 7];
        assert_eq!(pdoall_cost(&lens, &[1, 2], false), Some(21));
    }

    #[test]
    fn helix_formula() {
        // slowest 9, delta 2, 4 iterations -> 9 + 8 = 17.
        assert_eq!(helix_cost(&[5, 9, 3, 7], 2, false), Some(17));
        assert_eq!(helix_cost(&[5, 9, 3, 7], 0, false), Some(9));
        assert_eq!(helix_cost(&[5, 9], 1, true), None);
    }

    #[test]
    fn bounded_doall_waves() {
        let lens = [3u64, 5, 2, 4, 1];
        // Unbounded: slowest iteration.
        assert_eq!(doall_cost_bounded(&lens, false, false, None), Some(5));
        // 2 cores: waves {3,5},{2,4},{1} -> 5 + 4 + 1.
        assert_eq!(doall_cost_bounded(&lens, false, false, Some(2)), Some(10));
        // 1 core: serial sum.
        assert_eq!(doall_cost_bounded(&lens, false, false, Some(1)), Some(15));
        // Enough cores == unbounded.
        assert_eq!(
            doall_cost_bounded(&lens, false, false, Some(8)),
            doall_cost_bounded(&lens, false, false, None)
        );
    }

    #[test]
    fn bounded_pdoall_phases_and_waves() {
        let lens = [10u64; 6];
        // conflict at 3: phases {0,1,2},{3,4,5}; with 2 cores each phase
        // is 2 waves of 10 -> 20; total 40.
        assert_eq!(pdoall_cost_bounded(&lens, &[3], false, Some(2)), Some(40));
        assert_eq!(pdoall_cost_bounded(&lens, &[3], false, None), Some(20));
    }

    #[test]
    fn bounded_helix_respects_sync_and_core_reuse() {
        let lens = [10u64; 8];
        // Unbounded: 10 + 2*8 = 26.
        assert_eq!(helix_cost_bounded(&lens, 2, false, None), Some(26));
        // With delta 2 and 2 cores: core reuse dominates.
        let two = helix_cost_bounded(&lens, 2, false, Some(2)).unwrap();
        assert!(two > 26, "2 cores must be slower: {two}");
        // With huge delta, cores don't matter (sync dominates); the exact
        // simulation is slightly tighter than the paper's closed formula
        // (`delta × n` vs `delta × (n−1) + last`), so bound, not equality.
        let sim = helix_cost_bounded(&lens, 100, false, Some(2)).unwrap();
        let formula = helix_cost_bounded(&lens, 100, false, None).unwrap();
        assert!(sim <= formula && sim >= formula - 100);
        // Monotone in cores.
        let p4 = helix_cost_bounded(&lens, 2, false, Some(4)).unwrap();
        assert!(p4 <= two);
    }

    #[test]
    fn helix_with_large_delta_exceeds_serial() {
        // The caller is responsible for comparing with serial; verify the
        // raw number grows past the serial sum.
        let lens = [10u64; 4];
        let cost = helix_cost(&lens, 20, false).unwrap();
        assert!(cost > lens.iter().sum::<u64>());
    }
}
