//! Configuration flags (paper Table II) and execution models (§II-C).

use std::fmt;
use std::str::FromStr;

/// How reduction-accumulator LCDs are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReducMode {
    /// `-reduc0`: reductions are treated as non-computable LCDs.
    Reduc0,
    /// `-reduc1`: reductions are considered parallel with no overheads
    /// (tree/linear-chain reduction hardware).
    Reduc1,
}

/// How non-computable register LCDs are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepMode {
    /// `-dep0`: non-computable LCDs are not considered parallelizable.
    Dep0,
    /// `-dep1`: non-computable LCDs are lowered to memory and treated as
    /// frequent memory LCDs (HELIX synchronization).
    Dep1,
    /// `-dep2`: non-computable LCDs are accelerated using "realistic"
    /// value prediction (the four-predictor hybrid).
    Dep2,
    /// `-dep3`: non-computable LCDs are accelerated using perfect value
    /// prediction.
    Dep3,
}

/// How function calls inside loops are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FnMode {
    /// `-fn0`: loops with any function calls are marked sequential.
    Fn0,
    /// `-fn1`: only calls to compiler-identified pure functions are
    /// considered parallel.
    Fn1,
    /// `-fn2`: pure calls, thread-safe library calls, and instrumented
    /// user functions are considered parallel.
    Fn2,
    /// `-fn3`: all function calls can be parallelized.
    Fn3,
}

/// A full configuration triple, e.g. `reduc1-dep1-fn2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    /// Reduction handling.
    pub reduc: ReducMode,
    /// Non-computable register LCD handling.
    pub dep: DepMode,
    /// Function-call handling.
    pub fnm: FnMode,
}

impl Config {
    /// Builds a configuration triple.
    #[must_use]
    pub fn new(reduc: ReducMode, dep: DepMode, fnm: FnMode) -> Config {
        Config { reduc, dep, fnm }
    }

    /// The canonical enumeration of the full flag lattice: all 32
    /// combinations in reduc-major, then dep, then fn order. Every
    /// consumer that needs "the configurations, in order" (sweeps, table
    /// emitters, benches) must go through this one constructor so row
    /// orderings can't drift between crates.
    #[must_use]
    pub fn lattice() -> Vec<Config> {
        let mut out = Vec::new();
        for reduc in [ReducMode::Reduc0, ReducMode::Reduc1] {
            for dep in [DepMode::Dep0, DepMode::Dep1, DepMode::Dep2, DepMode::Dep3] {
                for fnm in [FnMode::Fn0, FnMode::Fn1, FnMode::Fn2, FnMode::Fn3] {
                    out.push(Config::new(reduc, dep, fnm));
                }
            }
        }
        out
    }

    /// All 32 flag combinations (alias of [`Config::lattice`]).
    #[must_use]
    pub fn all() -> Vec<Config> {
        Config::lattice()
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = match self.reduc {
            ReducMode::Reduc0 => 0,
            ReducMode::Reduc1 => 1,
        };
        let d = match self.dep {
            DepMode::Dep0 => 0,
            DepMode::Dep1 => 1,
            DepMode::Dep2 => 2,
            DepMode::Dep3 => 3,
        };
        let n = match self.fnm {
            FnMode::Fn0 => 0,
            FnMode::Fn1 => 1,
            FnMode::Fn2 => 2,
            FnMode::Fn3 => 3,
        };
        write!(f, "reduc{r}-dep{d}-fn{n}")
    }
}

/// Error parsing a configuration string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError(String);

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration string {:?}", self.0)
    }
}

impl std::error::Error for ParseConfigError {}

impl FromStr for Config {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Config, ParseConfigError> {
        let err = || ParseConfigError(s.to_string());
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 3 {
            return Err(err());
        }
        let reduc = match parts[0] {
            "reduc0" => ReducMode::Reduc0,
            "reduc1" => ReducMode::Reduc1,
            _ => return Err(err()),
        };
        let dep = match parts[1] {
            "dep0" => DepMode::Dep0,
            "dep1" => DepMode::Dep1,
            "dep2" => DepMode::Dep2,
            "dep3" => DepMode::Dep3,
            _ => return Err(err()),
        };
        let fnm = match parts[2] {
            "fn0" => FnMode::Fn0,
            "fn1" => FnMode::Fn1,
            "fn2" => FnMode::Fn2,
            "fn3" => FnMode::Fn3,
            _ => return Err(err()),
        };
        Ok(Config::new(reduc, dep, fnm))
    }
}

/// Parallel execution model (paper §II-C, Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecModel {
    /// DOALL: any conflict abandons parallel execution of the loop.
    Doall,
    /// Partial-DOALL: conflicts restart the parallel phase; >80 %
    /// conflicting iterations marks the loop sequential.
    PartialDoall,
    /// HELIX-style generalized DOACROSS: per-LCD synchronization.
    Helix,
}

impl ExecModel {
    /// All three models.
    #[must_use]
    pub fn all() -> [ExecModel; 3] {
        [ExecModel::Doall, ExecModel::PartialDoall, ExecModel::Helix]
    }
}

impl fmt::Display for ExecModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExecModel::Doall => "DOALL",
            ExecModel::PartialDoall => "Partial-DOALL",
            ExecModel::Helix => "HELIX-style",
        };
        f.write_str(name)
    }
}

/// The 14 `(model, config)` rows of the paper's Table II / Figures 2
/// and 3, bottom (most restrictive) to top.
///
/// The `Config` values are drawn from [`Config::lattice`] by their
/// lattice position (`reduc*16 + dep*4 + fn`), so the flag combinations
/// used by bench and runtime can never drift from the canonical
/// enumeration.
#[must_use]
pub fn table2_rows() -> Vec<(ExecModel, Config)> {
    use ExecModel::*;
    let lattice = Config::lattice();
    let pick = |r: usize, d: usize, n: usize| {
        let config = lattice[r * 16 + d * 4 + n];
        debug_assert_eq!(config.to_string(), format!("reduc{r}-dep{d}-fn{n}"));
        config
    };
    vec![
        (Doall, pick(0, 0, 0)),
        (Doall, pick(1, 0, 0)),
        (PartialDoall, pick(0, 0, 0)),
        (PartialDoall, pick(0, 2, 0)),
        (PartialDoall, pick(1, 2, 0)),
        (PartialDoall, pick(0, 0, 2)),
        (PartialDoall, pick(0, 2, 2)),
        (PartialDoall, pick(1, 2, 2)),
        (PartialDoall, pick(0, 3, 2)),
        (PartialDoall, pick(0, 3, 3)),
        (Helix, pick(0, 0, 2)),
        (Helix, pick(1, 0, 2)),
        (Helix, pick(0, 1, 2)),
        (Helix, pick(1, 1, 2)),
    ]
}

/// Renamed: the rows are Table II's, not "the paper's" generically.
#[deprecated(note = "renamed to `table2_rows`")]
#[must_use]
pub fn paper_rows() -> Vec<(ExecModel, Config)> {
    table2_rows()
}

/// The paper's "best realistic" configurations used in Figures 4 and 5.
#[must_use]
pub fn best_pdoall() -> (ExecModel, Config) {
    (
        ExecModel::PartialDoall,
        Config::new(ReducMode::Reduc1, DepMode::Dep2, FnMode::Fn2),
    )
}

/// Best HELIX configuration (`reduc1-dep1-fn2`), the headline row.
#[must_use]
pub fn best_helix() -> (ExecModel, Config) {
    (
        ExecModel::Helix,
        Config::new(ReducMode::Reduc1, DepMode::Dep1, FnMode::Fn2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        for c in Config::all() {
            let s = c.to_string();
            assert_eq!(s.parse::<Config>().unwrap(), c);
        }
        assert_eq!(Config::all().len(), 32);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("reduc2-dep0-fn0".parse::<Config>().is_err());
        assert!("reduc0-dep0".parse::<Config>().is_err());
        assert!("".parse::<Config>().is_err());
        assert!("reduc0-dep9-fn0".parse::<Config>().is_err());
    }

    #[test]
    fn table2_rows_are_fourteen_and_unique() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 14);
        let mut seen = std::collections::HashSet::new();
        for r in &rows {
            assert!(seen.insert((r.0, r.1)), "duplicate row {r:?}");
        }
        // Headline row present.
        assert!(rows.contains(&best_helix()));
        assert!(rows.contains(&best_pdoall()));
    }

    #[test]
    fn lattice_position_encodes_the_flag_triple() {
        for (i, c) in Config::lattice().iter().enumerate() {
            let (r, d, n) = (i / 16, (i / 4) % 4, i % 4);
            assert_eq!(c.to_string(), format!("reduc{r}-dep{d}-fn{n}"));
        }
    }

    #[test]
    fn table2_row_order_is_pinned() {
        // Figures 2/3 print rows in this exact order; a drift here would
        // silently relabel the paper's bars.
        let rendered: Vec<String> = table2_rows()
            .iter()
            .map(|(m, c)| format!("{m} {c}"))
            .collect();
        assert_eq!(
            rendered,
            [
                "DOALL reduc0-dep0-fn0",
                "DOALL reduc1-dep0-fn0",
                "Partial-DOALL reduc0-dep0-fn0",
                "Partial-DOALL reduc0-dep2-fn0",
                "Partial-DOALL reduc1-dep2-fn0",
                "Partial-DOALL reduc0-dep0-fn2",
                "Partial-DOALL reduc0-dep2-fn2",
                "Partial-DOALL reduc1-dep2-fn2",
                "Partial-DOALL reduc0-dep3-fn2",
                "Partial-DOALL reduc0-dep3-fn3",
                "HELIX-style reduc0-dep0-fn2",
                "HELIX-style reduc1-dep0-fn2",
                "HELIX-style reduc0-dep1-fn2",
                "HELIX-style reduc1-dep1-fn2",
            ]
        );
    }

    #[test]
    fn model_display() {
        assert_eq!(ExecModel::Doall.to_string(), "DOALL");
        assert_eq!(ExecModel::PartialDoall.to_string(), "Partial-DOALL");
        assert_eq!(ExecModel::Helix.to_string(), "HELIX-style");
    }
}
