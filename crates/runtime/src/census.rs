//! The ordering-constraint census (paper Table I).
//!
//! Table I is the taxonomy of dependencies restricting parallel loop
//! execution. This module quantifies it for a set of profiles: how many
//! register LCDs are computable (IV/MIV), reductions, predictable or
//! unpredictable non-computable; how many loops carry frequent vs
//! infrequent memory LCDs; and how many loops contain calls (the
//! structural, call-stack constraint).

use crate::profile::{CallClass, Profile, RegionKind};
use lp_analysis::LcdClass;
use std::fmt;

/// Accuracy at or above which a non-computable register LCD counts as
/// "predictable" (paper §II-A: "predictable at run-time through simple
/// and known value prediction schemes").
pub const PREDICTABLE_ACCURACY: f64 = 0.9;

/// Fraction of iterations above which a memory LCD counts as "frequent".
pub const FREQUENT_FRACTION: f64 = 0.5;

/// Quantified Table I for one or more profiled programs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Census {
    /// Programs aggregated.
    pub programs: u64,
    /// Static loops that executed at least once.
    pub executed_loops: u64,
    /// Computable register LCDs (IVs and MIVs), summed over executed
    /// loops.
    pub computable: u64,
    /// Reduction accumulators.
    pub reductions: u64,
    /// Non-computable register LCDs predicted with accuracy ≥
    /// [`PREDICTABLE_ACCURACY`].
    pub predictable: u64,
    /// Remaining non-computable register LCDs.
    pub unpredictable: u64,
    /// Executed loops whose memory RAW conflicts touch more than
    /// [`FREQUENT_FRACTION`] of iterations.
    pub frequent_mem_loops: u64,
    /// Executed loops with some, but infrequent, memory RAW conflicts.
    pub infrequent_mem_loops: u64,
    /// Executed loops with no cross-iteration memory RAW at all.
    pub no_mem_lcd_loops: u64,
    /// Executed loops that (dynamically) contain function calls — the
    /// structural call-stack constraint of §II-E.
    pub loops_with_calls: u64,
    /// Executed loops containing calls to non-thread-safe builtins.
    pub loops_with_unsafe_calls: u64,
}

impl Census {
    /// Accumulates one profile into the census.
    pub fn add_profile(&mut self, profile: &Profile) {
        self.programs += 1;
        // Aggregate per static loop across instances.
        let nmeta = profile.loop_meta.len();
        let mut executed = vec![false; nmeta];
        let mut conflict_iters = vec![0u64; nmeta];
        let mut total_iters = vec![0u64; nmeta];
        let mut has_calls = vec![false; nmeta];
        let mut has_unsafe = vec![false; nmeta];
        let mut lcd_observed: Vec<Vec<u64>> = profile
            .loop_meta
            .iter()
            .map(|m| vec![0; m.traced_phis.len()])
            .collect();
        let mut lcd_predicted = lcd_observed.clone();
        for region in &profile.regions {
            let RegionKind::Loop(inst) = &region.kind else {
                continue;
            };
            let m = inst.meta;
            executed[m] = true;
            conflict_iters[m] += inst.mem_conflict_iters.len() as u64;
            total_iters[m] += inst.iterations() as u64;
            has_calls[m] |= inst.call_class > CallClass::NoCalls;
            has_unsafe[m] |= inst.call_class >= CallClass::UnsafeCalls;
            for (i, lcd) in inst.lcds.iter().enumerate() {
                lcd_observed[m][i] += lcd.observed;
                lcd_predicted[m][i] += lcd.predicted;
            }
        }
        for (m, meta) in profile.loop_meta.iter().enumerate() {
            if !executed[m] {
                continue;
            }
            self.executed_loops += 1;
            self.computable += u64::from(meta.computable_phis);
            for (i, (_, class)) in meta.traced_phis.iter().enumerate() {
                match class {
                    LcdClass::Reduction(_) => self.reductions += 1,
                    LcdClass::NonComputable => {
                        let obs = lcd_observed[m][i];
                        let acc = if obs == 0 {
                            0.0
                        } else {
                            lcd_predicted[m][i] as f64 / obs as f64
                        };
                        if acc >= PREDICTABLE_ACCURACY {
                            self.predictable += 1;
                        } else {
                            self.unpredictable += 1;
                        }
                    }
                    LcdClass::Computable(_) => unreachable!("traced phis are never computable"),
                }
            }
            if total_iters[m] == 0 || conflict_iters[m] == 0 {
                self.no_mem_lcd_loops += 1;
            } else if conflict_iters[m] as f64 > FREQUENT_FRACTION * total_iters[m] as f64 {
                self.frequent_mem_loops += 1;
            } else {
                self.infrequent_mem_loops += 1;
            }
            if has_calls[m] {
                self.loops_with_calls += 1;
            }
            if has_unsafe[m] {
                self.loops_with_unsafe_calls += 1;
            }
        }
    }

    /// Builds a census over many profiles.
    #[must_use]
    pub fn over<'a>(profiles: impl IntoIterator<Item = &'a Profile>) -> Census {
        let mut c = Census::default();
        for p in profiles {
            c.add_profile(p);
        }
        c
    }
}

impl fmt::Display for Census {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Census over {} program(s), {} executed loop(s)",
            self.programs, self.executed_loops
        )?;
        writeln!(f, "  register LCDs:")?;
        writeln!(
            f,
            "    computable (IV/MIV)           {:>8}",
            self.computable
        )?;
        writeln!(
            f,
            "    reduction accumulators        {:>8}",
            self.reductions
        )?;
        writeln!(
            f,
            "    non-computable, predictable   {:>8}",
            self.predictable
        )?;
        writeln!(
            f,
            "    non-computable, unpredictable {:>8}",
            self.unpredictable
        )?;
        writeln!(f, "  memory LCDs (per loop):")?;
        writeln!(
            f,
            "    frequent (> {:.0}% of iters)    {:>8}",
            100.0 * FREQUENT_FRACTION,
            self.frequent_mem_loops
        )?;
        writeln!(
            f,
            "    infrequent                    {:>8}",
            self.infrequent_mem_loops
        )?;
        writeln!(
            f,
            "    none                          {:>8}",
            self.no_mem_lcd_loops
        )?;
        writeln!(f, "  structural (call-stack):")?;
        writeln!(
            f,
            "    loops containing calls        {:>8}",
            self.loops_with_calls
        )?;
        write!(
            f,
            "    loops with unsafe calls       {:>8}",
            self.loops_with_unsafe_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::profile_module;
    use lp_analysis::analyze_module;
    use lp_interp::MachineConfig;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Builtin, Global, IcmpPred, Module, Type};

    /// A loop with an IV, a reduction, a frequent memory LCD, and a print
    /// call — one of everything.
    fn kitchen_sink(n: i64) -> Module {
        let mut m = Module::new("sink");
        let g = m.add_global(Global::zeroed("cell", 1));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let nn = fb.const_i64(n);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let cell = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let s = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, nn);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let v = fb.load(Type::I64, cell);
        let v2 = fb.add(v, one);
        fb.store(v2, cell);
        fb.call_builtin(Builtin::PrintI64, &[v2]);
        let s2 = fb.add(s, v2); // accumulates loaded values: reduction, not SCEV
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(s, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(s, body, s2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(s));
        m.add_function(fb.finish().unwrap());
        m
    }

    #[test]
    fn census_counts_each_category() {
        let m = kitchen_sink(30);
        let analysis = analyze_module(&m);
        let (p, _) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
        let census = Census::over([&p]);
        assert_eq!(census.programs, 1);
        assert_eq!(census.executed_loops, 1);
        assert_eq!(census.computable, 1); // the IV
        assert_eq!(census.reductions, 1); // s += i
        assert_eq!(census.frequent_mem_loops, 1);
        assert_eq!(census.loops_with_calls, 1);
        assert_eq!(census.loops_with_unsafe_calls, 1);
        let text = census.to_string();
        assert!(text.contains("reduction accumulators"));
    }

    #[test]
    fn empty_census_displays() {
        let c = Census::default();
        assert!(c.to_string().contains("0 program(s)"));
    }
}
