//! Parallel DOALL replay orchestration: certify, witness, execute on
//! real threads, and differentially validate every prediction.
//!
//! The limit study's numbers are *predictions* — cost-model folds over a
//! profile. This module closes the loop by actually executing certified
//! DOALL loops across worker threads and byte-comparing the outcome
//! against a plain serial run. Per module, [`replay_module`] runs the
//! five-stage pipeline:
//!
//! 1. **Static certification** — `lp_analysis::certify` selects loops
//!    whose shape guarantees the replay mechanism works (closed-form
//!    phis, pure single-exit header, no frame growth or unsafe
//!    builtins).
//! 2. **Witnessed profiling** — one profiled run gathers, per certified
//!    loop instance, an [`IndependenceWitness`](crate::witness) checking
//!    all iteration footprints pairwise-disjoint. Loops whose witness
//!    fails (or that never executed) are rejected *before any parallel
//!    execution* — this is what catches a WAW-only false DOALL that RAW
//!    profiling cannot see.
//! 3. **Serial reference** — an unprofiled run records the final memory
//!    image, captured output, return value, and exact dynamic cost.
//! 4. **Replayed runs** — the interpreter re-runs the program twice with
//!    the surviving loops' [`ReplayPlan`]s armed: once with one worker
//!    (the timing baseline) and once with `jobs` workers, chunks fanned
//!    out over [`parallel_map`] by [`ThreadedExec`], which wall-clocks
//!    every replayed loop.
//! 5. **Differential validation** — both replayed runs must match the
//!    serial reference byte-for-byte: final global/heap memory (first
//!    differing address reported), captured output, return value, and
//!    dynamic cost. Any mismatch is a hard divergence naming the loop
//!    (bisected by re-running with single-loop plans) — never a silent
//!    wrong answer.
//!
//! Alongside the measured speedup (serial wall time of the loop's chunk
//! execution over its parallel wall time), each loop reports the limit
//! study's *predicted* DOALL speedup for the same profile, so
//! `lpstudy replay` renders a measured-vs-predicted table per suite.

use crate::config::{Config, DepMode, ExecModel, FnMode, ReducMode};
use crate::eval::evaluate;
use crate::export::Export;
use crate::sweep::{parallel_map, Jobs};
use crate::witness::{profile_module_witnessed, WitnessViolation};
use lp_analysis::{analyze_module, certify_module, CertPhi, CertifiedLoop};
use lp_interp::{
    run_chunk, ChunkOut, ChunkRequest, Engine, Exec, ExecUnit, InterpError, LoopShape,
    MachineConfig, ParallelExec, PhiKind, ReplayPlan, StepExpr, Value,
};
use lp_ir::fx::FxHashMap;
use lp_ir::{BlockId, Module};
use lp_obs::{span, Counter, JsonWriter};
use std::sync::Mutex;

/// Chunk executor backed by [`parallel_map`]: fans a replayed loop's
/// chunks over scoped worker threads and wall-clocks each replay,
/// accumulating nanoseconds per `(func, header)`.
#[derive(Debug)]
pub struct ThreadedExec {
    jobs: Jobs,
    elapsed_ns: Mutex<FxHashMap<(u32, u32), u64>>,
}

impl ThreadedExec {
    /// An executor fanning chunks over `jobs` workers.
    #[must_use]
    pub fn new(jobs: Jobs) -> ThreadedExec {
        ThreadedExec {
            jobs,
            elapsed_ns: Mutex::new(FxHashMap::default()),
        }
    }

    /// Accumulated wall time spent replaying `(func, header)`, in
    /// nanoseconds (0 if the loop was never replayed).
    #[must_use]
    pub fn loop_ns(&self, func: u32, header: u32) -> u64 {
        self.elapsed_ns
            .lock()
            .expect("timing lock")
            .get(&(func, header))
            .copied()
            .unwrap_or(0)
    }
}

impl ParallelExec for ThreadedExec {
    fn run_chunks(&self, req: ChunkRequest<'_>) -> Result<Vec<ChunkOut>, InterpError> {
        let reg = lp_obs::registry();
        let t0 = reg.now_ns();
        let outs: Vec<Result<ChunkOut, InterpError>> =
            parallel_map(&req.chunks, self.jobs, |_, c| run_chunk(&req, c));
        let elapsed = reg.now_ns().saturating_sub(t0);
        let key = (req.shape.func.0, req.shape.header.index() as u32);
        *self
            .elapsed_ns
            .lock()
            .expect("timing lock")
            .entry(key)
            .or_insert(0) += elapsed;
        outs.into_iter().collect()
    }
}

/// Why a statically-certified loop was refused replay.
#[derive(Debug, Clone)]
pub enum RejectReason {
    /// The independence witness found overlapping iteration footprints.
    Violation(WitnessViolation),
    /// The profiled run never entered the loop, so there is no witness
    /// (the observed-independence gate requires at least one instance).
    NeverExecuted,
}

/// A certified loop the witness gate kept off the threads.
#[derive(Debug, Clone)]
pub struct RejectedLoop {
    /// Containing function's name.
    pub func_name: String,
    /// Loop header.
    pub header: BlockId,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// Measured-vs-predicted record for one replayed loop.
#[derive(Debug, Clone)]
pub struct LoopReplay {
    /// Containing function's name.
    pub func_name: String,
    /// Loop header.
    pub header: BlockId,
    /// Loop instances observed by the witness run.
    pub instances: u64,
    /// Completed iterations across those instances.
    pub iterations: u64,
    /// Limit-study predicted DOALL speedup for this loop (infinite
    /// processors; from `evaluate` on the same profile).
    pub predicted_speedup: f64,
    /// Wall time of the loop's chunk execution in the 1-worker replay.
    pub serial_ns: u64,
    /// Wall time of the loop's chunk execution in the N-worker replay.
    pub parallel_ns: u64,
}

impl LoopReplay {
    /// Measured speedup: serial chunk wall time over parallel chunk wall
    /// time (1.0 when the loop was never replayed at run time).
    #[must_use]
    pub fn measured_speedup(&self) -> f64 {
        if self.serial_ns == 0 || self.parallel_ns == 0 {
            1.0
        } else {
            self.serial_ns as f64 / self.parallel_ns as f64
        }
    }
}

/// What diverged between a replayed run and the serial reference.
#[derive(Debug, Clone)]
pub enum DivergenceKind {
    /// First differing word of the final global/heap memory image.
    Memory {
        /// Address of the first differing word (lowest address).
        addr: u64,
        /// The serial run's word.
        expected: u64,
        /// The replayed run's word.
        actual: u64,
    },
    /// The entry function returned a different value.
    Ret {
        /// Serial return value.
        expected: Value,
        /// Replayed return value.
        actual: Value,
    },
    /// Captured output differs, first at this 0-based line.
    Output {
        /// Index of the first differing (or missing) line.
        line: usize,
    },
    /// Dynamic IR cost drifted (the replay mechanism's exact-cost
    /// invariant was broken).
    Cost {
        /// Serial cost.
        expected: u64,
        /// Replayed cost.
        actual: u64,
    },
}

/// A hard replay failure: some replayed run did not reproduce the serial
/// execution.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Worker count of the diverging run.
    pub jobs: usize,
    /// The loop responsible, bisected by single-loop re-runs (`None`
    /// when only a combination of loops reproduces the mismatch).
    pub loop_name: Option<String>,
    /// The first observed mismatch.
    pub kind: DivergenceKind,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let at = self.loop_name.as_deref().unwrap_or("<combination>");
        match &self.kind {
            DivergenceKind::Memory {
                addr,
                expected,
                actual,
            } => write!(
                f,
                "loop {at}: memory diverges at {addr:#x} (serial {expected:#x}, replay {actual:#x}, jobs {})",
                self.jobs
            ),
            DivergenceKind::Ret { expected, actual } => write!(
                f,
                "loop {at}: return value diverges (serial {expected:?}, replay {actual:?}, jobs {})",
                self.jobs
            ),
            DivergenceKind::Output { line } => write!(
                f,
                "loop {at}: output diverges at line {line} (jobs {})",
                self.jobs
            ),
            DivergenceKind::Cost { expected, actual } => write!(
                f,
                "loop {at}: dynamic cost diverges (serial {expected}, replay {actual}, jobs {})",
                self.jobs
            ),
        }
    }
}

/// Full replay outcome for one module.
#[derive(Debug, Clone)]
pub struct BenchReplay {
    /// Benchmark (module) name.
    pub name: String,
    /// Requested worker count.
    pub jobs: usize,
    /// Loops that certified, passed the witness gate, and were replayed.
    pub loops: Vec<LoopReplay>,
    /// Statically-certified loops the witness gate rejected.
    pub rejected: Vec<RejectedLoop>,
    /// First divergence, if any replayed run failed validation.
    pub divergence: Option<Divergence>,
}

/// The DOALL-limit configuration used for per-loop predictions:
/// reductions decoupled, no value prediction, every call parallel —
/// matching what certification lets the replayer execute.
#[must_use]
pub fn prediction_config() -> Config {
    Config::new(ReducMode::Reduc1, DepMode::Dep0, FnMode::Fn3)
}

fn shape_of(c: &CertifiedLoop) -> LoopShape {
    LoopShape {
        func: c.func,
        header: c.header,
        latch: c.latch,
        blocks: c.blocks.clone(),
        phis: c
            .phis
            .iter()
            .map(|(v, kind)| {
                let kind = match kind {
                    CertPhi::Affine(step) => PhiKind::Affine {
                        step: StepExpr {
                            konst: step.konst,
                            terms: step.terms.clone(),
                        },
                    },
                    CertPhi::Reduction(op) => PhiKind::Reduction { op: *op },
                };
                (*v, kind)
            })
            .collect(),
    }
}

/// One replayed execution with `shapes` armed on `jobs` workers.
fn run_with_plan(
    unit: &ExecUnit<'_>,
    shapes: Vec<LoopShape>,
    jobs: Jobs,
    args: &[Value],
    config: &MachineConfig,
) -> Result<(lp_interp::RunResult, lp_interp::Memory, ThreadedExec), InterpError> {
    let plan = ReplayPlan::new(shapes, jobs.get());
    let exec = ThreadedExec::new(jobs);
    let out = Exec::new(unit)
        .config(config.clone())
        .keep_memory(true)
        .replay(&plan, &exec)
        .run(args)?;
    let memory = out.memory.expect("keep_memory was requested");
    Ok((out.result, memory, exec))
}

/// Compares one replayed run against the serial reference, returning the
/// first mismatch.
fn compare(
    serial: &lp_interp::RunResult,
    serial_mem: &mut lp_interp::Memory,
    replay: &lp_interp::RunResult,
    replay_mem: &mut lp_interp::Memory,
) -> Option<DivergenceKind> {
    if let Some((addr, expected, actual)) = serial_mem.first_difference(replay_mem) {
        return Some(DivergenceKind::Memory {
            addr,
            expected,
            actual,
        });
    }
    if serial.ret != replay.ret {
        return Some(DivergenceKind::Ret {
            expected: serial.ret,
            actual: replay.ret,
        });
    }
    if serial.output != replay.output {
        let line = serial
            .output
            .iter()
            .zip(&replay.output)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| serial.output.len().min(replay.output.len()));
        return Some(DivergenceKind::Output { line });
    }
    if serial.cost != replay.cost {
        return Some(DivergenceKind::Cost {
            expected: serial.cost,
            actual: replay.cost,
        });
    }
    None
}

/// Bisects a divergence to a single loop by re-running with one-loop
/// plans (`plans` pairs each shape with its display name); returns the
/// first loop that reproduces a mismatch on its own.
fn bisect_culprit(
    unit: &ExecUnit<'_>,
    plans: &[(LoopShape, String)],
    jobs: Jobs,
    args: &[Value],
    config: &MachineConfig,
    serial: &lp_interp::RunResult,
    serial_mem: &mut lp_interp::Memory,
) -> Option<String> {
    for (shape, name) in plans {
        let Ok((res, mut mem, _)) = run_with_plan(unit, vec![shape.clone()], jobs, args, config)
        else {
            return Some(name.clone());
        };
        if compare(serial, serial_mem, &res, &mut mem).is_some() {
            return Some(name.clone());
        }
    }
    None
}

/// Runs the full certify → witness → replay → validate pipeline on one
/// module. See the module docs for the stages.
///
/// # Errors
/// Propagates interpreter traps from the profiled, serial, or replayed
/// runs. A *divergence* is not an error — it is reported in
/// [`BenchReplay::divergence`] (and counted on
/// [`Counter::ReplayDivergences`]) so the caller can fail loudly with
/// full context.
///
/// # Panics
/// Panics if a certified loop's metadata is missing from the profile
/// (would indicate an analysis/profiler disagreement).
pub fn replay_module(
    module: &Module,
    args: &[Value],
    jobs: Jobs,
) -> Result<BenchReplay, InterpError> {
    replay_module_with(module, args, jobs, Engine::default())
}

/// As [`replay_module`] with an explicit top-level [`Engine`].
///
/// The engine drives the profiled, serial-reference, and replayed
/// top-level runs; replay chunk *workers* always execute the tree walk
/// (chunks bypass the per-function dispatch the bytecode accelerates).
///
/// # Errors
/// See [`replay_module`].
///
/// # Panics
/// See [`replay_module`].
pub fn replay_module_with(
    module: &Module,
    args: &[Value],
    jobs: Jobs,
    engine: Engine,
) -> Result<BenchReplay, InterpError> {
    let _span = span!("replay");
    let analysis = analyze_module(module);
    let candidates = certify_module(module, &analysis);
    let targets: Vec<_> = candidates.iter().map(|c| (c.func, c.loop_id)).collect();

    let base_config = MachineConfig {
        capture_output: true,
        engine,
        ..MachineConfig::default()
    };
    let unit = ExecUnit::with_engine(module, engine);
    let (profile, _, witness) =
        profile_module_witnessed(module, &analysis, args, base_config.clone(), &targets)?;

    // Witness gate: at least one observed instance, all footprints
    // disjoint. Rejected loops never reach a thread.
    let mut gated: Vec<&CertifiedLoop> = Vec::new();
    let mut rejected: Vec<RejectedLoop> = Vec::new();
    for c in &candidates {
        let func_name = module.function(c.func).name.clone();
        if witness.loop_holds(c.func, c.loop_id) {
            gated.push(c);
        } else {
            let reason = witness
                .first_violation(c.func, c.loop_id)
                .and_then(|w| w.violation)
                .map_or(RejectReason::NeverExecuted, RejectReason::Violation);
            rejected.push(RejectedLoop {
                func_name,
                header: c.header,
                reason,
            });
        }
    }
    let counters = lp_obs::counters();
    counters.add(Counter::ReplayLoopsCertified, gated.len() as u64);
    counters.add(
        Counter::ReplayWitnessRejected,
        rejected
            .iter()
            .filter(|r| matches!(r.reason, RejectReason::Violation(_)))
            .count() as u64,
    );

    // Serial reference: plain run, no replay, no profiling.
    let serial_out = Exec::new(&unit)
        .config(base_config.clone())
        .keep_memory(true)
        .run(args)?;
    let (serial, mut serial_mem) = (
        serial_out.result,
        serial_out.memory.expect("keep_memory was requested"),
    );

    // Replayed runs: 1 worker (timing baseline), then `jobs` workers.
    let plans: Vec<(LoopShape, String)> = gated
        .iter()
        .map(|c| {
            (
                shape_of(c),
                format!("{}:{}", module.function(c.func).name, c.header),
            )
        })
        .collect();
    let shapes: Vec<LoopShape> = plans.iter().map(|(s, _)| s.clone()).collect();
    let (res1, mut mem1, exec1) =
        run_with_plan(&unit, shapes.clone(), Jobs::serial(), args, &base_config)?;
    let (res_n, mut mem_n, exec_n) =
        run_with_plan(&unit, shapes.clone(), jobs, args, &base_config)?;

    let mut divergence = None;
    for (run_jobs, res, mem) in [(1usize, &res1, &mut mem1), (jobs.get(), &res_n, &mut mem_n)] {
        if divergence.is_some() {
            break;
        }
        if let Some(kind) = compare(&serial, &mut serial_mem, res, mem) {
            let loop_name = bisect_culprit(
                &unit,
                &plans,
                Jobs::new(run_jobs),
                args,
                &base_config,
                &serial,
                &mut serial_mem,
            );
            divergence = Some(Divergence {
                jobs: run_jobs,
                loop_name,
                kind,
            });
        }
    }
    if divergence.is_some() {
        counters.add(Counter::ReplayDivergences, 1);
    }

    // Measured vs predicted per surviving loop.
    let prediction = evaluate(&profile, ExecModel::Doall, prediction_config());
    let loops = gated
        .iter()
        .map(|c| {
            let func_name = module.function(c.func).name.clone();
            let (instances, iterations) = witness
                .witnesses
                .iter()
                .filter(|w| w.func == c.func && w.loop_id == c.loop_id)
                .fold((0u64, 0u64), |(n, it), w| {
                    (n + 1, it + u64::from(w.iterations))
                });
            let predicted_speedup = prediction
                .loops
                .iter()
                .find(|l| l.func_name == func_name && l.header == c.header)
                .map_or(1.0, crate::eval::LoopSummary::speedup);
            LoopReplay {
                func_name,
                header: c.header,
                instances,
                iterations,
                predicted_speedup,
                serial_ns: exec1.loop_ns(c.func.0, c.header.index() as u32),
                parallel_ns: exec_n.loop_ns(c.func.0, c.header.index() as u32),
            }
        })
        .collect();

    Ok(BenchReplay {
        name: module.name.clone(),
        jobs: jobs.get(),
        loops,
        rejected,
        divergence,
    })
}

/// The `lp-replay-v1` document: per-benchmark replay outcomes plus
/// run-wide totals. Timing-derived fields (`serial_ns`, `parallel_ns`,
/// `measured_speedup`) are wall-clock and therefore *not* byte-stable
/// across runs; schema consumers must treat them as opaque numbers (the
/// golden test compares structure, not values).
#[derive(Debug, Clone, Copy)]
pub struct ReplayExport<'a> {
    /// Suite label the benchmarks came from.
    pub suite: &'a str,
    /// Requested worker count.
    pub jobs: usize,
    /// Per-benchmark outcomes.
    pub benches: &'a [BenchReplay],
}

impl Export for ReplayExport<'_> {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("format");
        w.string("lp-replay-v1");
        w.key("suite");
        w.string(self.suite);
        w.key("jobs");
        w.uint(self.jobs as u64);
        w.key("benchmarks");
        w.begin_array();
        for b in self.benches {
            w.begin_object();
            w.key("name");
            w.string(&b.name);
            w.key("loops");
            w.begin_array();
            for l in &b.loops {
                w.begin_object();
                w.key("function");
                w.string(&l.func_name);
                w.key("header");
                w.string(&l.header.to_string());
                w.key("instances");
                w.uint(l.instances);
                w.key("iterations");
                w.uint(l.iterations);
                w.key("predicted_speedup");
                w.fixed(l.predicted_speedup, 3);
                w.key("measured_speedup");
                w.fixed(l.measured_speedup(), 3);
                w.key("serial_ns");
                w.uint(l.serial_ns);
                w.key("parallel_ns");
                w.uint(l.parallel_ns);
                w.end_object();
            }
            w.end_array();
            w.key("rejected");
            w.begin_array();
            for r in &b.rejected {
                w.begin_object();
                w.key("function");
                w.string(&r.func_name);
                w.key("header");
                w.string(&r.header.to_string());
                match &r.reason {
                    RejectReason::Violation(v) => {
                        w.key("reason");
                        w.string("witness-violation");
                        w.key("kind");
                        w.string(v.kind.tag());
                        w.key("addr");
                        w.uint(v.addr);
                        w.key("earlier_iter");
                        w.uint(u64::from(v.earlier_iter));
                        w.key("later_iter");
                        w.uint(u64::from(v.later_iter));
                    }
                    RejectReason::NeverExecuted => {
                        w.key("reason");
                        w.string("never-executed");
                    }
                }
                w.end_object();
            }
            w.end_array();
            w.key("divergence");
            match &b.divergence {
                None => w.null(),
                Some(d) => w.string(&d.to_string()),
            }
            w.end_object();
        }
        w.end_array();
        w.key("totals");
        w.begin_object();
        w.key("loops_certified");
        w.uint(self.benches.iter().map(|b| b.loops.len() as u64).sum());
        w.key("witness_rejected");
        w.uint(
            self.benches
                .iter()
                .flat_map(|b| &b.rejected)
                .filter(|r| matches!(r.reason, RejectReason::Violation(_)))
                .count() as u64,
        );
        w.key("divergences");
        w.uint(
            self.benches
                .iter()
                .filter(|b| b.divergence.is_some())
                .count() as u64,
        );
        w.end_object();
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Global, IcmpPred, Type};

    /// `a[i] = i*3` for i in 0..64, returning the sum via a reduction.
    fn fill_and_sum() -> Module {
        let mut m = Module::new("fill_and_sum");
        let g = m.add_global(Global::zeroed("a", 64));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(64);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let three = fb.const_i64(3);
        let base = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let s = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let v = fb.mul(i, three);
        let addr = fb.gep(base, i, 8, 0);
        fb.store(v, addr);
        let s2 = fb.add(s, v);
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(s, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(s, body, s2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(s));
        m.add_function(fb.finish().unwrap());
        m
    }

    /// Statically certifiable, RAW-clean, but WAW-unsafe: every
    /// iteration also stores to `a[0]`.
    fn false_doall() -> Module {
        let mut m = Module::new("false_doall");
        let g = m.add_global(Global::zeroed("a", 64));
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(64);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let base = fb.global_addr(g);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let c = fb.icmp(IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let addr = fb.gep(base, i, 8, 0);
        fb.store(i, addr);
        fb.store(i, base); // hidden cross-iteration WAW
        let i2 = fb.add(i, one);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(zero));
        m.add_function(fb.finish().unwrap());
        m
    }

    #[test]
    fn clean_kernel_replays_without_divergence() {
        let m = fill_and_sum();
        for jobs in [1, 2, 8] {
            let r = replay_module(&m, &[], Jobs::new(jobs)).unwrap();
            assert!(r.divergence.is_none(), "jobs={jobs}: {:?}", r.divergence);
            assert_eq!(r.loops.len(), 1, "jobs={jobs}");
            assert!(r.rejected.is_empty());
            let l = &r.loops[0];
            assert_eq!(l.instances, 1);
            assert_eq!(l.iterations, 64);
            assert!(l.predicted_speedup > 1.0);
            assert!(l.serial_ns > 0 && l.parallel_ns > 0);
        }
    }

    #[test]
    fn false_doall_is_rejected_by_witness_not_executed() {
        let m = false_doall();
        let r = replay_module(&m, &[], Jobs::new(4)).unwrap();
        assert!(r.loops.is_empty(), "must not replay: {:?}", r.loops);
        assert_eq!(r.rejected.len(), 1);
        assert!(matches!(
            r.rejected[0].reason,
            RejectReason::Violation(WitnessViolation {
                kind: crate::witness::ConflictKind::WriteWrite,
                ..
            })
        ));
        assert!(r.divergence.is_none());
    }

    #[test]
    fn replay_export_is_valid_json() {
        let m = fill_and_sum();
        let r = replay_module(&m, &[], Jobs::new(2)).unwrap();
        let benches = vec![r];
        let doc = ReplayExport {
            suite: "adhoc",
            jobs: 2,
            benches: &benches,
        };
        let json = doc.to_json();
        lp_obs::validate_json(&json).expect("lp-replay-v1 must be valid JSON");
        assert!(json.starts_with("{\"format\":\"lp-replay-v1\""), "{json}");
        assert!(json.contains("\"measured_speedup\""));
        assert!(json.contains("\"totals\""));
        assert!(json.contains("\"divergence\":null"));
    }
}
