//! Cross-program aggregation helpers for the experiment harness.

use crate::eval::EvalReport;

/// Geometric mean of a slice (1.0 for an empty slice).
///
/// The paper reports GEOMEAN speedups per suite (Figs 2–3).
///
/// ```
/// assert_eq!(lp_runtime::geomean(&[2.0, 8.0]), 4.0);
/// assert_eq!(lp_runtime::geomean(&[]), 1.0);
/// ```
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice (0.0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// One benchmark's outcome under one `(model, config)` row.
#[derive(Debug, Clone)]
pub struct ProgramResult {
    /// Benchmark name (e.g. `429.mcf`).
    pub name: String,
    /// Limit speedup.
    pub speedup: f64,
    /// Dynamic coverage (percent).
    pub coverage: f64,
}

impl ProgramResult {
    /// Extracts the interesting numbers from a full report.
    #[must_use]
    pub fn from_report(report: &EvalReport) -> ProgramResult {
        ProgramResult {
            name: report.program.clone(),
            speedup: report.speedup,
            coverage: report.coverage,
        }
    }
}

/// Geometric-mean speedup over a set of program results.
#[must_use]
pub fn geomean_speedup(results: &[ProgramResult]) -> f64 {
    geomean(&results.iter().map(|r| r.speedup).collect::<Vec<_>>())
}

/// Geometric-mean coverage over a set of program results.
#[must_use]
pub fn geomean_coverage(results: &[ProgramResult]) -> f64 {
    geomean(
        &results
            .iter()
            .map(|r| r.coverage.max(0.01))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_is_scale_invariant() {
        let a = geomean(&[1.5, 2.5, 3.5]);
        let b = geomean(&[3.0, 5.0, 7.0]);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_speedup_over_results() {
        let rs = vec![
            ProgramResult {
                name: "a".into(),
                speedup: 2.0,
                coverage: 50.0,
            },
            ProgramResult {
                name: "b".into(),
                speedup: 8.0,
                coverage: 100.0,
            },
        ];
        assert!((geomean_speedup(&rs) - 4.0).abs() < 1e-9);
        let cov = geomean_coverage(&rs);
        assert!(cov > 50.0 && cov < 100.0);
    }
}
