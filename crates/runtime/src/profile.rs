//! The profile: everything one instrumented run records.
//!
//! A profile is a **dynamic region tree** over the run: one node per
//! function activation ("call region") and one per executed loop instance,
//! each stamped with its start/end position on the sequential dynamic-IR
//! cost axis. Loop instances additionally carry per-iteration start
//! stamps, the memory RAW conflicts observed across their iterations, the
//! traced register-LCD streams, and the worst class of call made from
//! inside the loop. Every configuration and execution model is evaluated
//! *offline* from this single profile — one run serves all 14 paper rows.

use lp_analysis::{LcdClass, LoopId};
use lp_ir::{BlockId, FuncId, ValueId};

/// Dense index of a region node in [`Profile::regions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Returns the arena index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Severity-ordered classification of the calls made (dynamically) from
/// inside a loop. Drives the `fn0..fn3` gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum CallClass {
    /// No calls executed inside the loop.
    #[default]
    NoCalls,
    /// Only pure (read-only, side-effect-free) callees.
    PureCalls,
    /// Instrumented user functions and/or thread-safe library builtins.
    InstrumentedCalls,
    /// At least one non-thread-safe builtin (I/O, shared-state RNG).
    UnsafeCalls,
}

/// Static (per `(function, loop)`) metadata captured from the compile-time
/// analyses.
#[derive(Debug, Clone)]
pub struct LoopMeta {
    /// Owning function.
    pub func: FuncId,
    /// Loop id within the function's forest.
    pub loop_id: LoopId,
    /// Function name (for reports).
    pub func_name: String,
    /// Header block (for reports).
    pub header: BlockId,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
    /// Traced header phis: non-computable and reduction LCDs, in block
    /// order. Computable phis are filtered out at compile time — exactly
    /// the paper's "use compile-time analysis to filter out accelerated
    /// dependencies" overhead reduction.
    pub traced_phis: Vec<(ValueId, LcdClass)>,
    /// Number of computable (IV/MIV) header phis, for the census.
    pub computable_phis: u32,
}

/// The per-iteration trace of one traced register LCD in one loop
/// instance.
#[derive(Debug, Clone, Default)]
pub struct LcdInstance {
    /// Iterations (≥1) whose incoming value the hybrid predictor missed.
    pub mispredict_iters: Vec<u32>,
    /// Maximum offset (relative to iteration start) at which the latch
    /// value was produced — the HELIX `dep1` producer timestamp.
    pub max_def_rel: u64,
    /// Values observed (= iterations the phi resolved).
    pub observed: u64,
    /// Values the hybrid predicted correctly.
    pub predicted: u64,
}

impl LcdInstance {
    /// Hybrid prediction accuracy for this instance (0 when empty).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.predicted as f64 / self.observed as f64
        }
    }
}

/// Dynamic record of one executed loop instance.
#[derive(Debug, Clone)]
pub struct LoopInstance {
    /// Index into [`Profile::loop_meta`].
    pub meta: usize,
    /// Absolute cost stamp of each iteration start (one entry per
    /// iteration; iteration `k` spans `iter_starts[k] ..
    /// iter_starts[k+1]`, the last one ends at the region end).
    pub iter_starts: Vec<u64>,
    /// Iterations that consumed a value stored by an earlier iteration
    /// (memory RAW conflicts), sorted and deduplicated.
    pub mem_conflict_iters: Vec<u32>,
    /// Largest per-iteration producer→consumer skew over all dynamic
    /// memory RAW edges: `max((producer_rel − consumer_rel) / span)`.
    /// This is `delta_largest`'s memory contribution for HELIX.
    pub mem_max_skew: u64,
    /// Latest producer offset over all RAW edges (classic DOACROSS's
    /// single sync point must wait for the *last* write...).
    pub mem_max_producer_rel: u64,
    /// Earliest consumer offset over all RAW edges (...and release
    /// before the *first* read). `u64::MAX` when no edges manifested.
    pub mem_min_consumer_rel: u64,
    /// Total dynamic memory RAW edges observed (census).
    pub mem_edges: u64,
    /// Traced register-LCD streams, parallel to
    /// [`LoopMeta::traced_phis`].
    pub lcds: Vec<LcdInstance>,
    /// Worst call class observed while this instance was active.
    pub call_class: CallClass,
}

impl LoopInstance {
    /// Number of iterations executed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iter_starts.len()
    }
}

/// Dense lookup from `(func, loop)` to a [`Profile::loop_meta`] index.
///
/// Two array indexes instead of a tuple-keyed hash map (see DESIGN.md
/// §10): the outer vector is indexed by function id, the inner by loop
/// id within that function. Not serialized — it is a pure function of
/// `loop_meta`, rebuilt on decode via [`MetaIndex::from_meta`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaIndex {
    /// `per_func[func][loop]` is the meta index, or [`MetaIndex::NONE`].
    per_func: Vec<Vec<u32>>,
}

impl MetaIndex {
    /// Sentinel: no meta entry for this `(func, loop)` slot.
    const NONE: u32 = u32::MAX;

    /// Rebuilds the index from the meta table it points into.
    #[must_use]
    pub fn from_meta(loop_meta: &[LoopMeta]) -> MetaIndex {
        let mut index = MetaIndex::default();
        for (i, m) in loop_meta.iter().enumerate() {
            index.insert(m.func.0, m.loop_id.0, i);
        }
        index
    }

    /// Maps `(func, loop_id)` to `idx`, growing the tables as needed.
    pub fn insert(&mut self, func: u32, loop_id: u32, idx: usize) {
        let f = func as usize;
        if self.per_func.len() <= f {
            self.per_func.resize(f + 1, Vec::new());
        }
        let row = &mut self.per_func[f];
        let l = loop_id as usize;
        if row.len() <= l {
            row.resize(l + 1, MetaIndex::NONE);
        }
        row[l] = u32::try_from(idx).expect("meta index fits in u32");
    }

    /// The meta index for `(func, loop_id)`, if registered.
    #[must_use]
    pub fn get(&self, func: u32, loop_id: u32) -> Option<usize> {
        let v = *self.per_func.get(func as usize)?.get(loop_id as usize)?;
        (v != MetaIndex::NONE).then_some(v as usize)
    }

    /// All entries as `((func, loop_id), idx)`, in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = ((u32, u32), usize)> + '_ {
        self.per_func.iter().enumerate().flat_map(|(f, row)| {
            row.iter().enumerate().filter_map(move |(l, &v)| {
                (v != MetaIndex::NONE).then_some(((f as u32, l as u32), v as usize))
            })
        })
    }
}

/// What a region node is.
#[derive(Debug, Clone)]
pub enum RegionKind {
    /// A function activation.
    Call {
        /// The callee.
        func: FuncId,
    },
    /// One dynamic execution of a loop.
    Loop(LoopInstance),
}

/// A node of the dynamic region tree.
#[derive(Debug, Clone)]
pub struct Region {
    /// Parent node (`None` only for the root `main` activation).
    pub parent: Option<RegionId>,
    /// If the parent is a loop instance: the parent iteration during
    /// which this region started. 0 otherwise.
    pub parent_iter: u32,
    /// Start stamp on the sequential cost axis.
    pub start: u64,
    /// End stamp (exclusive).
    pub end: u64,
    /// Payload.
    pub kind: RegionKind,
    /// Child regions in creation order.
    pub children: Vec<RegionId>,
}

impl Region {
    /// Raw sequential cost of the region.
    #[must_use]
    pub fn serial_cost(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// The complete record of one instrumented run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Program name (module name).
    pub program: String,
    /// Total sequential dynamic IR cost of the run.
    pub total_cost: u64,
    /// Region arena; index 0 is the root (`main`).
    pub regions: Vec<Region>,
    /// Static loop metadata referenced by loop instances.
    pub loop_meta: Vec<LoopMeta>,
    /// Lookup from `(func, loop)` to `loop_meta` index.
    pub meta_index: MetaIndex,
    /// Function names indexed by [`FuncId`] — names the call frames in
    /// the collapsed-stack export.
    pub func_names: Vec<String>,
}

impl Profile {
    /// The root region (the `main` activation).
    ///
    /// # Panics
    /// Panics on an empty profile (the profiler always creates a root).
    #[must_use]
    pub fn root(&self) -> RegionId {
        assert!(!self.regions.is_empty(), "profile has no regions");
        RegionId(0)
    }

    /// Region lookup.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[must_use]
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Metadata for a loop instance region.
    ///
    /// # Panics
    /// Panics if `region` is not a loop instance.
    #[must_use]
    pub fn meta_of(&self, region: &Region) -> &LoopMeta {
        match &region.kind {
            RegionKind::Loop(inst) => &self.loop_meta[inst.meta],
            RegionKind::Call { .. } => panic!("meta_of called on a call region"),
        }
    }

    /// Iterator over all loop-instance regions.
    pub fn loop_instances(&self) -> impl Iterator<Item = (RegionId, &Region, &LoopInstance)> {
        self.regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match &r.kind {
                RegionKind::Loop(inst) => Some((RegionId(i as u32), r, inst)),
                RegionKind::Call { .. } => None,
            })
    }

    /// Iteration lengths of a loop instance (derived from start stamps and
    /// the region end).
    #[must_use]
    pub fn iter_lengths(&self, region: &Region, inst: &LoopInstance) -> Vec<u64> {
        let n = inst.iter_starts.len();
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let start = inst.iter_starts[k];
            let end = if k + 1 < n {
                inst.iter_starts[k + 1]
            } else {
                region.end
            };
            out.push(end.saturating_sub(start));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_meta() -> LoopMeta {
        LoopMeta {
            func: FuncId(0),
            loop_id: LoopId(0),
            func_name: "f".to_string(),
            header: BlockId(1),
            depth: 1,
            traced_phis: Vec::new(),
            computable_phis: 1,
        }
    }

    #[test]
    fn iter_lengths_cover_the_instance() {
        let inst = LoopInstance {
            meta: 0,
            iter_starts: vec![10, 20, 35],
            mem_conflict_iters: Vec::new(),
            mem_max_skew: 0,
            mem_max_producer_rel: 0,
            mem_min_consumer_rel: u64::MAX,
            mem_edges: 0,
            lcds: Vec::new(),
            call_class: CallClass::NoCalls,
        };
        let region = Region {
            parent: None,
            parent_iter: 0,
            start: 10,
            end: 50,
            kind: RegionKind::Loop(inst),
            children: Vec::new(),
        };
        let profile = Profile {
            program: "p".into(),
            total_cost: 50,
            regions: vec![region],
            loop_meta: vec![dummy_meta()],
            meta_index: MetaIndex::default(),
            func_names: vec!["f".to_string()],
        };
        let r = profile.region(RegionId(0));
        let RegionKind::Loop(inst) = &r.kind else {
            unreachable!()
        };
        let lens = profile.iter_lengths(r, inst);
        assert_eq!(lens, vec![10, 15, 15]);
        assert_eq!(lens.iter().sum::<u64>(), r.serial_cost());
    }

    #[test]
    fn meta_index_round_trips_and_iterates_in_key_order() {
        let mut metas = Vec::new();
        for (f, l) in [(2u32, 1u32), (0, 0), (2, 0)] {
            let mut m = dummy_meta();
            m.func = FuncId(f);
            m.loop_id = LoopId(l);
            metas.push(m);
        }
        let idx = MetaIndex::from_meta(&metas);
        assert_eq!(idx.get(2, 1), Some(0));
        assert_eq!(idx.get(0, 0), Some(1));
        assert_eq!(idx.get(2, 0), Some(2));
        assert_eq!(idx.get(1, 0), None);
        assert_eq!(idx.get(2, 7), None);
        assert_eq!(idx.get(9, 0), None);
        let keys: Vec<_> = idx.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![(0, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn call_class_ordering_matches_severity() {
        assert!(CallClass::NoCalls < CallClass::PureCalls);
        assert!(CallClass::PureCalls < CallClass::InstrumentedCalls);
        assert!(CallClass::InstrumentedCalls < CallClass::UnsafeCalls);
    }

    #[test]
    fn lcd_accuracy() {
        let lcd = LcdInstance {
            observed: 10,
            predicted: 9,
            ..LcdInstance::default()
        };
        assert!((lcd.accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(LcdInstance::default().accuracy(), 0.0);
    }
}
