//! Conservation-law audit over a registry snapshot.
//!
//! The pipeline's counters are not independent: every cross-iteration
//! RAW edge records a conflict-distance sample, every instrumented run
//! records a profile-time sample, every predictor kind sees the same
//! prediction stream. [`audit_snapshot`] asserts those implied
//! invariants over an `lp-snapshot-v1` document so silent telemetry
//! bit-rot (a counter that stops being incremented, a histogram that
//! drifts from its twin) becomes a failing check instead of a slowly
//! wrong dashboard. Surfaced as `lpstudy audit SNAP.json` (exit 1 on
//! any violation).
//!
//! Checks whose inputs are all zero report [`Verdict::Skip`] — a run
//! that never touched the profile store can't validate store
//! accounting, and skipping is not passing silently: the report says
//! so.

use lp_obs::snapshot::RunSnapshot;

/// Outcome of one invariant check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The invariant holds.
    Pass,
    /// The invariant is violated.
    Fail,
    /// Every input was zero; the invariant is vacuous for this run.
    Skip,
}

/// One named invariant with its outcome and the numbers behind it.
#[derive(Debug, Clone)]
pub struct Check {
    pub name: &'static str,
    pub verdict: Verdict,
    pub detail: String,
}

fn check(name: &'static str, holds: bool, vacuous: bool, detail: String) -> Check {
    let verdict = if vacuous {
        Verdict::Skip
    } else if holds {
        Verdict::Pass
    } else {
        Verdict::Fail
    };
    Check {
        name,
        verdict,
        detail,
    }
}

/// Hist sample count by name (0 when the histogram is absent).
fn hist_count(snap: &RunSnapshot, name: &str) -> u64 {
    snap.hist(name).map_or(0, |h| h.count)
}

/// Runs every conservation-law check over `snap`.
#[must_use]
pub fn audit_snapshot(snap: &RunSnapshot) -> Vec<Check> {
    let c = |name: &str| snap.counter(name);
    let mut checks = Vec::new();

    // Every predictor kind classifies the same prediction stream, so
    // hits + misses must agree across all five kinds exactly.
    let kinds = ["last_value", "stride", "two_delta_stride", "fcm", "hybrid"];
    let totals: Vec<u64> = kinds
        .iter()
        .map(|k| c(&format!("predictor_hit_{k}")) + c(&format!("predictor_miss_{k}")))
        .collect();
    checks.push(check(
        "predictor_stream_balance",
        totals.windows(2).all(|w| w[0] == w[1]),
        totals.iter().all(|&t| t == 0),
        format!(
            "hits+misses per kind: {}",
            kinds
                .iter()
                .zip(&totals)
                .map(|(k, t)| format!("{k}={t}"))
                .collect::<Vec<_>>()
                .join(" ")
        ),
    ));

    // Exact histogram/counter twins: the profiler records one sample
    // per loop instance / instrumented run / evaluation / RAW edge.
    let twins = [
        (
            "loop_iterations_per_instance",
            "loop_iterations",
            "loop_instances",
        ),
        ("profile_time_per_run", "profile_nanos", "profiles_taken"),
        ("eval_time_per_eval", "eval_nanos", "evals_performed"),
        (
            "conflict_distance_per_raw_edge",
            "conflict_distance",
            "raw_conflicts",
        ),
    ];
    for (name, hist, counter) in twins {
        let (hc, cv) = (hist_count(snap, hist), c(counter));
        checks.push(check(
            name,
            hc == cv,
            hc == 0 && cv == 0,
            format!("{hist}.count={hc} {counter}={cv}"),
        ));
    }

    // events_consumed is the sink-side total; the per-kind event
    // counters partition a subset of it (loop exits carry no counter).
    let kinds_sum = c("blocks_entered")
        + c("loads")
        + c("stores")
        + c("phis_resolved")
        + c("funcs_entered")
        + c("builtin_calls")
        + c("value_defs");
    let consumed = c("events_consumed");
    checks.push(check(
        "event_kinds_within_consumed",
        consumed >= kinds_sum,
        consumed == 0 && kinds_sum == 0,
        format!("events_consumed={consumed} sum(per-kind)={kinds_sum}"),
    ));

    // Store accounting: corrupt entries are a subset of misses, and a
    // miss always falls back to a fresh instrumented run.
    let (hits, misses, corrupt) = (
        c("store_hits"),
        c("store_misses"),
        c("store_corrupt_discarded"),
    );
    checks.push(check(
        "store_corrupt_within_misses",
        corrupt <= misses,
        hits == 0 && misses == 0 && corrupt == 0,
        format!("store_corrupt_discarded={corrupt} store_misses={misses}"),
    ));
    checks.push(check(
        "store_misses_within_profiles",
        misses <= c("profiles_taken"),
        misses == 0,
        format!(
            "store_misses={misses} profiles_taken={}",
            c("profiles_taken")
        ),
    ));

    // The shadow table only probes its page cache on stores inside an
    // active loop; interpreter memory probes on every access — so the
    // shadow total can never exceed the memory total (the PR-6 fix).
    let shadow = c("shadow_page_cache_hits") + c("shadow_page_cache_misses");
    let mem = c("mem_page_cache_hits") + c("mem_page_cache_misses");
    checks.push(check(
        "shadow_probes_within_mem_probes",
        shadow <= mem,
        shadow == 0 && mem == 0,
        format!("shadow={shadow} mem={mem}"),
    ));

    // A sweep evaluation either shares a profile or performs one; the
    // share count can't exceed the evaluations that wanted a profile.
    let shared = c("sweep_profile_cache_hits");
    checks.push(check(
        "sweep_sharing_within_evals",
        shared <= c("evals_performed"),
        shared == 0,
        format!(
            "sweep_profile_cache_hits={shared} evals_performed={}",
            c("evals_performed")
        ),
    ));

    // Journal ring occupancy: retained records can't exceed the ring
    // capacity or the all-time total, and nothing is evicted before
    // the ring fills.
    let (total, retained) = (snap.journal_total, snap.journal_retained);
    let cap = lp_obs::JOURNAL_CAP as u64;
    let holds = retained <= cap.min(total) && (total > cap || retained == total);
    checks.push(check(
        "journal_ring_occupancy",
        holds,
        total == 0 && retained == 0,
        format!("total={total} retained={retained} cap={cap}"),
    ));

    checks
}

/// Number of failed checks.
#[must_use]
pub fn failures(checks: &[Check]) -> usize {
    checks.iter().filter(|c| c.verdict == Verdict::Fail).count()
}

/// Human-readable report; last line is
/// `audit: N check(s), P passed, S skipped, F failed`.
#[must_use]
pub fn render_audit(checks: &[Check]) -> String {
    let mut out = String::new();
    for c in checks {
        let tag = match c.verdict {
            Verdict::Pass => "pass",
            Verdict::Fail => "FAIL",
            Verdict::Skip => "skip",
        };
        out.push_str(&format!("{tag}  {:<32} {}\n", c.name, c.detail));
    }
    let passed = checks.iter().filter(|c| c.verdict == Verdict::Pass).count();
    let skipped = checks.iter().filter(|c| c.verdict == Verdict::Skip).count();
    out.push_str(&format!(
        "audit: {} check(s), {passed} passed, {skipped} skipped, {} failed\n",
        checks.len(),
        failures(checks)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_obs::metrics::{Counter, Hist, PredictorKind};
    use lp_obs::registry::Registry;
    use lp_obs::snapshot::capture;

    fn consistent_registry() -> Registry {
        let reg = Registry::new();
        let c = reg.counters();
        c.add(Counter::EventsConsumed, 100);
        c.add(Counter::BlocksEntered, 40);
        c.add(Counter::Loads, 30);
        c.add(Counter::Stores, 20);
        c.add(Counter::LoopInstances, 2);
        c.add(Counter::ProfilesTaken, 1);
        c.add(Counter::EvalsPerformed, 3);
        c.add(Counter::RawConflicts, 2);
        for kind in PredictorKind::ALL {
            c.add(Counter::PredictorHit(kind), 5);
            c.add(Counter::PredictorMiss(kind), 5);
        }
        reg.record_hist(Hist::LoopIterations, 10);
        reg.record_hist(Hist::LoopIterations, 20);
        reg.record_hist(Hist::ProfileNanos, 1234);
        for _ in 0..3 {
            reg.record_hist(Hist::EvalNanos, 99);
        }
        reg.record_hist(Hist::ConflictDistance, 1);
        reg.record_hist(Hist::ConflictDistance, 4);
        reg
    }

    #[test]
    fn consistent_snapshot_passes_without_failures() {
        let snap = capture(&consistent_registry(), "audit-test");
        let checks = audit_snapshot(&snap);
        assert_eq!(failures(&checks), 0, "{}", render_audit(&checks));
        assert!(checks.iter().any(|c| c.verdict == Verdict::Skip));
        assert!(checks
            .iter()
            .any(|c| c.name == "predictor_stream_balance" && c.verdict == Verdict::Pass));
    }

    #[test]
    fn empty_snapshot_skips_everything() {
        let snap = capture(&Registry::new(), "audit-empty");
        let checks = audit_snapshot(&snap);
        assert_eq!(failures(&checks), 0);
        // journal occupancy may legitimately pass (the process journal
        // is live in tests); every counter-law must be vacuous.
        for c in &checks {
            if c.name != "journal_ring_occupancy" {
                assert_eq!(c.verdict, Verdict::Skip, "{} not skipped", c.name);
            }
        }
    }

    #[test]
    fn violations_are_detected() {
        let reg = consistent_registry();
        // Break the predictor balance and the histogram twin.
        reg.counters()
            .add(Counter::PredictorHit(PredictorKind::Fcm), 1);
        reg.counters().add(Counter::LoopInstances, 7);
        let snap = capture(&reg, "audit-broken");
        let checks = audit_snapshot(&snap);
        assert_eq!(failures(&checks), 2, "{}", render_audit(&checks));
        let broken = |name: &str| {
            checks
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.verdict == Verdict::Fail)
                .unwrap()
        };
        assert!(broken("predictor_stream_balance"));
        assert!(broken("loop_iterations_per_instance"));
        let report = render_audit(&checks);
        assert!(report.contains("2 failed"));
    }

    #[test]
    fn store_and_journal_laws_catch_impossible_states() {
        let reg = Registry::new();
        reg.counters().add(Counter::StoreCorruptDiscarded, 5);
        reg.counters().add(Counter::StoreMisses, 2);
        let snap = capture(&reg, "audit-store");
        let checks = audit_snapshot(&snap);
        assert!(checks
            .iter()
            .any(|c| c.name == "store_corrupt_within_misses" && c.verdict == Verdict::Fail));

        // Hand-forge an impossible journal occupancy.
        let mut snap = snap;
        snap.journal_total = 10;
        snap.journal_retained = 11;
        let checks = audit_snapshot(&snap);
        assert!(checks
            .iter()
            .any(|c| c.name == "journal_ring_occupancy" && c.verdict == Verdict::Fail));
    }
}
