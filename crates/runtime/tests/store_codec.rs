//! Property tests for the profile-store binary codec (`lp_runtime::store`)
//! over randomized profiles: build a random single-loop program whose
//! body mixes reductions, non-computable register LCDs, array stores,
//! and a shared-cell memory LCD, profile it under a random machine seed
//! and cactus-stack setting, and check that
//!
//! - `decode(encode(entry))` succeeds and re-encodes byte-identically
//!   (the codec is canonical, so byte equality is the strongest
//!   round-trip check available without `PartialEq` on `Profile`);
//! - the decoded profile is observationally equal: every Table II row
//!   evaluates to the same report;
//! - any random truncation or byte corruption is rejected with an error,
//!   never a panic or a silently different profile.

use lp_interp::MachineConfig;
use lp_ir::builder::FunctionBuilder;
use lp_ir::{BlockId, Global, IcmpPred, Module, Type, ValueId};
use lp_runtime::{
    decode_entry, encode_entry, evaluate, profile_module_with, table2_rows, ProfilerOptions,
};
use proptest::prelude::*;

/// One loop-carried accumulator in the generated loop body.
#[derive(Debug, Clone, Copy)]
enum Acc {
    /// `s += a[i % len]` — a reduction over memory.
    SumArray,
    /// `s ^= i` — an xor reduction over the induction variable.
    XorIv,
    /// `s = s * K + C` — a non-computable register LCD (LCG).
    Lcg,
}

/// The generated program shape: one counted loop with `accs` carried
/// accumulators, optionally storing to an array (iteration-local
/// addresses) and bumping a shared cell (a frequent memory LCD).
#[derive(Debug, Clone)]
struct Spec {
    trips: i64,
    accs: Vec<(i64, Acc)>,
    fill_mul: Option<i64>,
    shared_cell: bool,
    rng_seed: u64,
    cactus: bool,
}

fn acc() -> impl Strategy<Value = Acc> {
    prop_oneof![Just(Acc::SumArray), Just(Acc::XorIv), Just(Acc::Lcg),]
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        (
            2i64..60,
            prop::collection::vec((-100i64..100, acc()), 1..4),
            prop_oneof![Just(None).boxed(), (1i64..50).prop_map(Some).boxed()],
        ),
        (any::<bool>(), any::<u64>(), any::<bool>()),
    )
        .prop_map(
            |((trips, accs, fill_mul), (shared_cell, rng_seed, cactus))| Spec {
                trips,
                accs,
                fill_mul,
                shared_cell,
                rng_seed,
                cactus,
            },
        )
}

/// Builds `for i in 0..trips { body }` with the spec's accumulators.
fn build(spec: &Spec) -> Module {
    let mut module = Module::new("codec-prop");
    let array = module.add_global(Global::zeroed("a", 64));
    let cell = module.add_global(Global::zeroed("c", 2));
    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let base = fb.global_addr(array);
    let cellp = fb.global_addr(cell);
    let n = fb.const_i64(spec.trips);
    let zero = fb.const_i64(0);
    let one = fb.const_i64(1);
    let len = fb.const_i64(64);
    let inits: Vec<ValueId> = spec.accs.iter().map(|&(v, _)| fb.const_i64(v)).collect();

    let header = fb.create_block("header");
    let body = fb.create_block("body");
    let exit = fb.create_block("exit");
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Type::I64);
    let accs: Vec<ValueId> = spec.accs.iter().map(|_| fb.phi(Type::I64)).collect();
    let c = fb.icmp(IcmpPred::Slt, i, n);
    fb.cond_br(c, body, exit);

    fb.switch_to(body);
    let i2 = fb.add(i, one);
    let mut nexts = Vec::with_capacity(accs.len());
    for (&phi, &(_, kind)) in accs.iter().zip(&spec.accs) {
        let next = match kind {
            Acc::SumArray => {
                let idx = fb.srem(i, len);
                let a = fb.gep(base, idx, 8, 0);
                let v = fb.load(Type::I64, a);
                fb.add(phi, v)
            }
            Acc::XorIv => fb.xor(phi, i),
            Acc::Lcg => {
                let k = fb.const_i64(6364136223846793005u64 as i64);
                let add = fb.const_i64(1442695040888963407u64 as i64);
                let t = fb.mul(phi, k);
                fb.add(t, add)
            }
        };
        nexts.push(next);
    }
    if let Some(mul) = spec.fill_mul {
        let m = fb.const_i64(mul);
        let t = fb.mul(i, m);
        let idx = fb.srem(i, len);
        let a = fb.gep(base, idx, 8, 0);
        fb.store(t, a);
    }
    if spec.shared_cell {
        let v = fb.load(Type::I64, cellp);
        let v2 = fb.add(v, one);
        fb.store(v2, cellp);
    }
    fb.add_phi_incoming(i, BlockId::ENTRY, zero);
    fb.add_phi_incoming(i, body, i2);
    for ((&phi, &init), &next) in accs.iter().zip(&inits).zip(&nexts) {
        fb.add_phi_incoming(phi, BlockId::ENTRY, init);
        fb.add_phi_incoming(phi, body, next);
    }
    fb.br(header);

    fb.switch_to(exit);
    let mut checksum = zero;
    for &phi in &accs {
        checksum = fb.xor(checksum, phi);
    }
    fb.ret(Some(checksum));
    module.add_function(fb.finish().expect("generated program is complete"));
    module
}

fn profile_of(spec: &Spec) -> (lp_runtime::Profile, lp_interp::RunResult) {
    let module = build(spec);
    let analysis = lp_analysis::analyze_module(&module);
    profile_module_with(
        &module,
        &analysis,
        &[],
        MachineConfig {
            rng_seed: spec.rng_seed,
            ..MachineConfig::default()
        },
        ProfilerOptions {
            cactus_stack: spec.cactus,
        },
    )
    .expect("generated program runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_profiles_round_trip_canonically(s in spec()) {
        let (profile, run) = profile_of(&s);
        let bytes = encode_entry(&profile, &run);
        let (decoded, run2) = decode_entry(&bytes).expect("fresh encoding decodes");
        // Canonical codec: re-encoding the decoded entry reproduces the
        // exact bytes, so every field survived.
        prop_assert_eq!(&encode_entry(&decoded, &run2), &bytes);
        prop_assert_eq!(format!("{:?}", run.ret), format!("{:?}", run2.ret));
        prop_assert_eq!(run.cost, run2.cost);
        // Observational equality: the evaluator cannot tell the decoded
        // profile from the original on any Table II row.
        for (model, config) in table2_rows() {
            let a = evaluate(&profile, model, config);
            let b = evaluate(&decoded, model, config);
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "{} {}", model, config);
        }
    }

    #[test]
    fn random_truncation_is_rejected(s in spec(), cut in 0usize..1000) {
        let (profile, run) = profile_of(&s);
        let bytes = encode_entry(&profile, &run);
        let keep = (bytes.len() - 1) * cut / 1000;
        prop_assert!(decode_entry(&bytes[..keep]).is_err(), "kept {keep} of {}", bytes.len());
    }

    #[test]
    fn random_corruption_is_rejected(s in spec(), at in 0usize..1000, mask in 0u8..255) {
        let (profile, run) = profile_of(&s);
        let mut bytes = encode_entry(&profile, &run);
        let idx = (bytes.len() - 1) * at / 1000;
        let mask = mask + 1;
        bytes[idx] ^= mask;
        // Any corrupted byte must surface as a decode error (magic,
        // version, framing, or checksum) — never a panic and never a
        // silently different profile.
        prop_assert!(decode_entry(&bytes).is_err(), "flip {mask:#x} at {idx}");
    }
}
