//! The `MeteredSink` decorator inside `profile_module` must not perturb
//! the profiler: a metered run's `Profile` (and every `EvalReport`
//! derived from it) must be identical to an undecorated run's.

use lp_analysis::analyze_module;
use lp_interp::{Exec, ExecUnit, MachineConfig, MeteredSink, Value};
use lp_ir::builder::FunctionBuilder;
use lp_ir::{Global, IcmpPred, Module, Type};
use lp_runtime::{evaluate, profile_module, table2_rows, Profiler};

/// A loop carrying a RAW through one memory cell plus a nested callee, so
/// the profile exercises regions, conflicts, predictors, and call classes.
fn sample_module(n: i64) -> Module {
    let mut m = Module::new("fidelity");
    let g = m.add_global(Global::zeroed("cell", 1));

    let mut fb = FunctionBuilder::new("bump", &[Type::I64], Type::I64);
    let arg = fb.param(0);
    let one = fb.const_i64(1);
    let r = fb.add(arg, one);
    fb.ret(Some(r));
    let bump = m.add_function(fb.finish().unwrap());

    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let nn = fb.const_i64(n);
    let zero = fb.const_i64(0);
    let one = fb.const_i64(1);
    let cell = fb.global_addr(g);
    let header = fb.create_block("header");
    let body = fb.create_block("body");
    let exit = fb.create_block("exit");
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Type::I64);
    let c = fb.icmp(IcmpPred::Slt, i, nn);
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let v = fb.load(Type::I64, cell);
    let v2 = fb.call(bump, Type::I64, &[v]);
    fb.store(v2, cell);
    let i2 = fb.add(i, one);
    fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
    fb.add_phi_incoming(i, body, i2);
    fb.br(header);
    fb.switch_to(exit);
    let r = fb.load(Type::I64, cell);
    fb.ret(Some(r));
    m.add_function(fb.finish().unwrap());
    m
}

#[test]
fn metered_profile_and_reports_are_identical() {
    let m = sample_module(40);
    let analysis = analyze_module(&m);

    // Undecorated: drive the machine with the bare profiler.
    let mut plain = Profiler::new(&m, &analysis);
    let config = MachineConfig {
        watched_values: plain.watched_values(),
        ..MachineConfig::default()
    };
    let unit = ExecUnit::new(&m);
    let plain_result = Exec::new(&unit)
        .sink(&mut plain)
        .config(config)
        .run(&[])
        .unwrap()
        .result;
    let plain_profile = plain.finish();

    // Decorated: `profile_module` wraps the profiler in a `MeteredSink`.
    let (metered_profile, metered_result) =
        profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();

    assert_eq!(plain_result.ret, metered_result.ret);
    assert_eq!(plain_result.cost, metered_result.cost);
    assert_eq!(
        format!("{plain_profile:?}"),
        format!("{metered_profile:?}"),
        "metering perturbed the profile"
    );
    for (model, config) in table2_rows() {
        let a = evaluate(&plain_profile, model, config);
        let b = evaluate(&metered_profile, model, config);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{model} {config}");
    }
}

/// The DESIGN.md overhead measurement: interleaves bare and metered runs
/// and compares medians, so scheduler drift cancels out. Ignored by
/// default; run with
/// `cargo test --release -p lp-runtime --test metered_fidelity -- --ignored --nocapture`.
#[test]
#[ignore = "measurement harness, run explicitly in release mode"]
fn measure_observability_overhead() {
    let m = sample_module(20_000);
    let analysis = analyze_module(&m);
    let rounds = 60;
    let mut bare = Vec::with_capacity(rounds);
    let mut metered = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let mut profiler = Profiler::new(&m, &analysis);
        let config = MachineConfig {
            watched_values: profiler.watched_values(),
            ..MachineConfig::default()
        };
        let unit = ExecUnit::new(&m);
        Exec::new(&unit)
            .sink(&mut profiler)
            .config(config)
            .run(&[])
            .unwrap();
        let p = profiler.finish();
        bare.push(t.elapsed().as_nanos() as u64);
        assert!(p.total_cost > 0);

        let t = std::time::Instant::now();
        let (p, _) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
        metered.push(t.elapsed().as_nanos() as u64);
        assert!(p.total_cost > 0);
    }
    bare.sort_unstable();
    metered.sort_unstable();
    let (b, mt) = (bare[rounds / 2], metered[rounds / 2]);
    let overhead = 100.0 * (mt as f64 - b as f64) / b as f64;
    println!(
        "bare median {:.3}ms, metered median {:.3}ms, overhead {overhead:+.2}%",
        b as f64 / 1e6,
        mt as f64 / 1e6,
    );
}

#[test]
fn metered_counts_match_delivered_events() {
    let m = sample_module(10);
    let analysis = analyze_module(&m);
    let mut profiler = Profiler::new(&m, &analysis);
    let config = MachineConfig {
        watched_values: profiler.watched_values(),
        ..MachineConfig::default()
    };
    let mut metered = MeteredSink::new(&mut profiler);
    let unit = ExecUnit::new(&m);
    let result = Exec::new(&unit)
        .sink(&mut metered)
        .config(config)
        .run(&[])
        .unwrap()
        .result;
    let counts = metered.counts();
    assert_eq!(result.ret, Value::I(10));
    // 10 iterations enter `bump`, plus main itself.
    assert_eq!(counts.funcs, 11);
    assert_eq!(counts.exits, 11);
    assert!(counts.loads >= 11 && counts.stores >= 10);
    assert!(counts.blocks > 0 && counts.phis > 0);
    assert_eq!(
        counts.total(),
        counts.blocks
            + counts.phis
            + counts.loads
            + counts.stores
            + counts.funcs
            + counts.exits
            + counts.builtins
            + counts.defs
    );
}
