//! End-to-end observability: running a `Study` populates the global
//! registry with the pipeline's phase spans and counters, and the Chrome
//! trace exporter emits strictly valid JSON (checked with a small
//! recursive-descent parser, since the workspace has no serde).

use loopapalooza::Study;
use lp_obs::Counter;
use lp_suite::Scale;

/// Minimal JSON validator: consumes one value, returns the rest.
fn skip_ws(s: &str) -> &str {
    s.trim_start_matches([' ', '\t', '\n', '\r'])
}

fn parse_value(s: &str) -> Result<&str, String> {
    let s = skip_ws(s);
    match s.chars().next() {
        Some('{') => parse_object(s),
        Some('[') => parse_array(s),
        Some('"') => parse_string(s),
        Some('t') => s.strip_prefix("true").ok_or_else(|| bad(s)),
        Some('f') => s.strip_prefix("false").ok_or_else(|| bad(s)),
        Some('n') => s.strip_prefix("null").ok_or_else(|| bad(s)),
        Some(c) if c == '-' || c.is_ascii_digit() => parse_number(s),
        _ => Err(bad(s)),
    }
}

fn bad(s: &str) -> String {
    format!("unexpected input at {:?}", &s[..s.len().min(24)])
}

fn parse_string(s: &str) -> Result<&str, String> {
    let mut it = s.char_indices().skip(1);
    while let Some((i, c)) = it.next() {
        match c {
            '"' => return Ok(&s[i + 1..]),
            '\\' => {
                let (_, esc) = it.next().ok_or("truncated escape")?;
                if esc == 'u' {
                    for _ in 0..4 {
                        let (_, h) = it.next().ok_or("truncated \\u escape")?;
                        if !h.is_ascii_hexdigit() {
                            return Err(format!("bad hex digit {h:?}"));
                        }
                    }
                } else if !matches!(esc, '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') {
                    return Err(format!("bad escape \\{esc}"));
                }
            }
            c if (c as u32) < 0x20 => return Err("raw control char in string".into()),
            _ => {}
        }
    }
    Err("unterminated string".into())
}

fn parse_number(s: &str) -> Result<&str, String> {
    let end = s
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(s.len());
    s[..end].parse::<f64>().map_err(|e| e.to_string())?;
    Ok(&s[end..])
}

fn parse_array(s: &str) -> Result<&str, String> {
    let mut s = skip_ws(&s[1..]);
    if let Some(rest) = s.strip_prefix(']') {
        return Ok(rest);
    }
    loop {
        s = skip_ws(parse_value(s)?);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s.strip_prefix(']').ok_or_else(|| bad(s));
        }
    }
}

fn parse_object(s: &str) -> Result<&str, String> {
    let mut s = skip_ws(&s[1..]);
    if let Some(rest) = s.strip_prefix('}') {
        return Ok(rest);
    }
    loop {
        s = skip_ws(s);
        s = parse_string(s)?;
        s = skip_ws(s).strip_prefix(':').ok_or("missing colon")?;
        s = skip_ws(parse_value(s)?);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else {
            return s.strip_prefix('}').ok_or_else(|| bad(s));
        }
    }
}

fn assert_valid_json(text: &str) {
    match parse_value(text) {
        Ok(rest) => assert!(skip_ws(rest).is_empty(), "trailing garbage: {rest:?}"),
        Err(e) => panic!("invalid JSON: {e}"),
    }
}

#[test]
fn study_populates_spans_counters_and_valid_chrome_trace() {
    let reg = lp_obs::registry();
    reg.reset();

    let bench = lp_suite::find("181.mcf").expect("registered benchmark");
    let module = bench.build(Scale::Test);
    let study = Study::of(&module).expect("study runs");
    let rows = study.paper_rows();
    assert_eq!(rows.len(), 14);

    // Phase spans from every pipeline stage.
    let spans = reg.spans();
    for phase in ["verify", "analyze", "profile", "evaluate"] {
        assert!(
            spans.iter().any(|s| s.name == phase),
            "missing span {phase:?} in {:?}",
            spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }
    // The profile span must bracket the work: it is the longest of the
    // profiling-side phases and every evaluate span starts after it ends.
    let profile = spans.iter().find(|s| s.name == "profile").unwrap();
    for ev in spans.iter().filter(|s| s.name == "evaluate") {
        assert!(ev.start_ns >= profile.end_ns);
    }

    // Counters flushed by the profiler and evaluator.
    let c = reg.counters();
    assert!(c.get(Counter::EventsConsumed) > 0);
    assert!(c.get(Counter::BlocksEntered) > 0);
    assert!(c.get(Counter::RegionsCreated) > 0);
    assert!(c.get(Counter::LoopInstances) > 0);
    assert_eq!(c.get(Counter::ProfilesTaken), 1);
    assert_eq!(c.get(Counter::EvalsPerformed), 14);

    // Exporters produce strictly valid JSON.
    assert_valid_json(&lp_obs::to_json(reg));
    let trace = lp_obs::chrome_trace(reg, "obs_pipeline");
    assert_valid_json(&trace);
    for needle in [
        "\"name\":\"profile\"",
        "\"name\":\"evaluate\"",
        "\"ph\":\"M\"",
        "\"ph\":\"X\"",
        "\"events_consumed\"",
    ] {
        assert!(trace.contains(needle), "missing {needle} in trace");
    }

    reg.reset();
}
