//! End-to-end observability: running a `Study` populates the global
//! registry with the pipeline's phase spans and counters, and the Chrome
//! trace exporter emits strictly valid JSON (checked with
//! `lp_obs::validate_json`, the shared recursive-descent validator,
//! since the workspace has no serde).

use loopapalooza::Study;
use lp_obs::Counter;
use lp_suite::Scale;

#[test]
fn study_populates_spans_counters_and_valid_chrome_trace() {
    let reg = lp_obs::registry();
    reg.reset();

    let bench = lp_suite::find("181.mcf").expect("registered benchmark");
    let module = bench.build(Scale::Test);
    let study = Study::of(&module).expect("study runs");
    let rows = study.table2_rows();
    assert_eq!(rows.len(), 14);

    // Phase spans from every pipeline stage.
    let spans = reg.spans();
    for phase in ["verify", "analyze", "profile", "evaluate"] {
        assert!(
            spans.iter().any(|s| s.name == phase),
            "missing span {phase:?} in {:?}",
            spans.iter().map(|s| s.name).collect::<Vec<_>>()
        );
    }
    // The profile span must bracket the work: it is the longest of the
    // profiling-side phases and every evaluate span starts after it ends.
    let profile = spans.iter().find(|s| s.name == "profile").unwrap();
    for ev in spans.iter().filter(|s| s.name == "evaluate") {
        assert!(ev.start_ns >= profile.end_ns);
    }

    // Counters flushed by the profiler and evaluator.
    let c = reg.counters();
    assert!(c.get(Counter::EventsConsumed) > 0);
    assert!(c.get(Counter::BlocksEntered) > 0);
    assert!(c.get(Counter::RegionsCreated) > 0);
    assert!(c.get(Counter::LoopInstances) > 0);
    assert_eq!(c.get(Counter::ProfilesTaken), 1);
    assert_eq!(c.get(Counter::EvalsPerformed), 14);

    // Exporters produce strictly valid JSON.
    lp_obs::validate_json(&lp_obs::to_json(reg)).expect("to_json output");
    let trace = lp_obs::chrome_trace(reg, "obs_pipeline");
    lp_obs::validate_json(&trace).expect("chrome trace output");
    for needle in [
        "\"name\":\"profile\"",
        "\"name\":\"evaluate\"",
        "\"ph\":\"M\"",
        "\"ph\":\"X\"",
        "\"events_consumed\"",
    ] {
        assert!(trace.contains(needle), "missing {needle} in trace");
    }

    reg.reset();
}
