//! End-to-end golden test of the limiter-attribution exports: the demo
//! kernel's explain JSON must satisfy the hand-rolled validator, the
//! collapsed-stack export must telescope to the sequential cost, and a
//! serial-marked loop must name at least one concrete limiter.

use loopapalooza::prelude::*;
use lp_runtime::{collapsed_stacks, Export};

#[test]
fn explain_exports_are_valid_and_name_limiters() {
    let bench = lp_suite::find("181.mcf").expect("demo benchmark registered");
    let module = bench.build(Scale::Test);
    let study = Study::of(&module).unwrap();

    let rows: [(ExecModel, Config); 3] = [
        (ExecModel::Doall, "reduc0-dep0-fn0".parse().unwrap()),
        best_pdoall(),
        best_helix(),
    ];
    for (model, config) in rows {
        let (report, attr) = study.explain(model, config);
        assert_eq!(report.best_cost, attr.best_cost);

        // The JSON export passes the hand-rolled validator.
        let json = attr.to_json();
        lp_obs::validate_json(&json).expect("explain JSON must be well-formed");
        assert!(json.contains("\"program\":\"181.mcf\""));
        assert!(json.contains("\"limiters\":["));

        // The collapsed stacks telescope to the total sequential cost.
        let collapsed = collapsed_stacks(study.profile(), &attr);
        let mut sum = 0u64;
        for line in collapsed.lines() {
            let (frames, weight) = line.rsplit_once(' ').expect("frames <space> weight");
            assert!(!frames.is_empty());
            sum += weight.parse::<u64>().expect("integer weight");
        }
        assert_eq!(sum, attr.total_cost);
    }

    // Under the most restrictive DOALL row, at least one loop is marked
    // serial and names a concrete limiter with nonzero weight.
    let (_, attr) = study.explain(ExecModel::Doall, "reduc0-dep0-fn0".parse().unwrap());
    let serial = attr
        .loops
        .iter()
        .find(|l| l.verdict() == "serial")
        .expect("demo kernel has a serial-marked loop under DOALL dep0-fn0");
    assert!(!serial.limiters.is_empty(), "serial loop names a limiter");
    assert!(serial.limiters[0].weight > 0);
    let table = attr.render_table();
    assert!(table.contains(serial.limiters[0].kind.name()));
    assert!(table.contains(&serial.location()));

    // The program rollup is ranked by weight.
    for w in attr.limiters.windows(2) {
        assert!(w[0].weight >= w[1].weight);
    }
}
