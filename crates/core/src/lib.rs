//! # Loopapalooza — a compiler-driven limit study of loop-level parallelism
//!
//! A from-scratch Rust reproduction of *"Loopapalooza: Investigating
//! Limits of Loop-Level Parallelism with a Compiler-Driven Approach"*
//! (Zaidi, Iordanou, Luján, Gabrielli — ISPASS 2021).
//!
//! This crate is the facade tying the subsystem crates together:
//!
//! - [`lp_ir`] — the SSA IR substrate (standing in for LLVM IR);
//! - [`lp_analysis`] — the compile-time component (loops, SCEV,
//!   reductions, purity);
//! - [`lp_interp`] — deterministic execution with instrumentation
//!   call-backs;
//! - [`lp_predict`] — the four-way hybrid value predictor;
//! - [`lp_runtime`] — the run-time component: dependence tracking, the
//!   DOALL / Partial-DOALL / HELIX cost models, and the evaluator;
//! - [`lp_suite`] — synthetic SPEC CPU2000/2006 and EEMBC stand-ins.
//!
//! # Quickstart
//!
//! ```
//! use loopapalooza::prelude::*;
//!
//! # fn main() -> Result<(), loopapalooza::Error> {
//! // Pick a benchmark and profile it once...
//! let bench = lp_suite::find("181.mcf").expect("registered benchmark");
//! let module = bench.build(Scale::Test);
//! let study = Study::of(&module)?;
//!
//! // ...then evaluate any (model, configuration) pair offline.
//! let best = study.evaluate(ExecModel::Helix, "reduc1-dep1-fn2".parse().unwrap());
//! assert!(best.speedup >= 1.0);
//! # Ok(())
//! # }
//! ```

pub use lp_analysis;
pub use lp_interp;
pub use lp_ir;
pub use lp_predict;
pub use lp_runtime;
pub use lp_suite;

use lp_analysis::ModuleAnalysis;
use lp_interp::{MachineConfig, RunResult};
use lp_ir::Module;
use lp_runtime::{
    evaluate, evaluate_explained, Attribution, Census, Config, EvalOptions, EvalReport, ExecModel,
    Jobs, Profile, ProfileStore, ProfilerOptions, SweepUnit,
};
use std::fmt;
use std::sync::Arc;

/// Commonly used items, re-exported for `use loopapalooza::prelude::*`.
pub mod prelude {
    pub use crate::{Error, Study};
    pub use lp_ir::builder::FunctionBuilder;
    pub use lp_ir::{Module, Type};
    #[allow(deprecated)]
    pub use lp_runtime::paper_rows;
    pub use lp_runtime::{
        best_helix, best_pdoall, table2_rows, Attribution, Config, DepMode, ExecModel, FnMode,
        Jobs, LimiterKind, ProfileStore, ReducMode, StoreMode, SweepUnit,
    };
    pub use lp_suite::{self, Scale, SuiteId};
}

/// Top-level error: anything the pipeline can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The module failed verification.
    Ir(lp_ir::IrError),
    /// Execution trapped or exhausted its budget.
    Interp(lp_interp::InterpError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Ir(e) => write!(f, "ir error: {e}"),
            Error::Interp(e) => write!(f, "interp error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<lp_ir::IrError> for Error {
    fn from(e: lp_ir::IrError) -> Error {
        Error::Ir(e)
    }
}

impl From<lp_interp::InterpError> for Error {
    fn from(e: lp_interp::InterpError) -> Error {
        Error::Interp(e)
    }
}

/// One profiled program, ready for offline evaluation under any
/// `(execution model, configuration)` pair.
///
/// Construction verifies the module, runs the compile-time analyses,
/// executes the program once under the profiler (the expensive step), and
/// keeps the [`Profile`]. Every subsequent [`Study::evaluate`] call is a
/// cheap fold over the recorded region tree — exactly the paper's
/// "single instrumented run, many configurations" workflow.
/// The profile is held behind an [`Arc`] so the parallel sweep engine
/// can evaluate many `(model, config)` pairs concurrently against one
/// shared, immutable profile (see [`Study::shared_profile`]).
#[derive(Debug)]
pub struct Study {
    analysis: ModuleAnalysis,
    profile: Arc<Profile>,
    run: RunResult,
}

impl Study {
    /// Verifies, analyzes, and profiles `module` (with no arguments and
    /// default machine limits).
    ///
    /// # Errors
    /// Returns [`Error::Ir`] for invalid modules and [`Error::Interp`]
    /// for runtime traps.
    pub fn of(module: &Module) -> Result<Study, Error> {
        Study::with_config(module, MachineConfig::default())
    }

    /// As [`Study::of`] with explicit machine limits.
    ///
    /// # Errors
    /// As [`Study::of`].
    pub fn with_config(module: &Module, config: MachineConfig) -> Result<Study, Error> {
        Study::with_store(module, config, None)
    }

    /// As [`Study::with_config`], consulting a persistent
    /// [`ProfileStore`] first: on a cache hit the instrumented run is
    /// skipped entirely (verification and the compile-time analyses are
    /// cheap and always run), on a miss the fresh profile is persisted
    /// for the next process.
    ///
    /// # Errors
    /// As [`Study::of`]. Store problems never fail the call — they
    /// degrade to profiling.
    pub fn with_store(
        module: &Module,
        config: MachineConfig,
        store: Option<&ProfileStore>,
    ) -> Result<Study, Error> {
        {
            let _span = lp_obs::span!("verify");
            lp_ir::verify_module(module)?;
            lp_analysis::verify_ssa(module)?;
        }
        let analysis = {
            let _span = lp_obs::span!("analyze");
            lp_analysis::analyze_module(module)
        };
        let (profile, run) = lp_runtime::profile_module_cached(
            module,
            &analysis,
            config,
            ProfilerOptions::default(),
            store,
        )?;
        Ok(Study {
            analysis,
            profile: Arc::new(profile),
            run,
        })
    }

    /// Evaluates one `(model, config)` pair against the stored profile.
    #[must_use]
    pub fn evaluate(&self, model: ExecModel, config: Config) -> EvalReport {
        evaluate(&self.profile, model, config)
    }

    /// As [`Study::evaluate`], additionally attributing every loop's gap
    /// to its ideal conflict-free cost across ranked [`Limiter`]s
    /// (counterfactual re-costing with one cost term lifted at a time).
    ///
    /// The returned [`EvalReport`] is identical to what
    /// [`Study::evaluate`] produces for the same pair.
    ///
    /// [`Limiter`]: lp_runtime::Limiter
    #[must_use]
    pub fn explain(&self, model: ExecModel, config: Config) -> (EvalReport, Attribution) {
        evaluate_explained(&self.profile, model, config)
    }

    /// Evaluates all 14 rows of the paper's Table II / Figures 2–3.
    #[must_use]
    pub fn table2_rows(&self) -> Vec<EvalReport> {
        lp_runtime::table2_rows()
            .into_iter()
            .map(|(model, config)| self.evaluate(model, config))
            .collect()
    }

    /// Renamed: the rows are Table II's, not "the paper's" generically.
    #[deprecated(note = "renamed to `table2_rows`")]
    #[must_use]
    pub fn paper_rows(&self) -> Vec<EvalReport> {
        self.table2_rows()
    }

    /// The recorded profile.
    #[must_use]
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// A shareable handle to the profile for the parallel sweep engine:
    /// profile once here, evaluate many `(model, config)` pairs on any
    /// number of workers without re-profiling.
    #[must_use]
    pub fn shared_profile(&self) -> Arc<Profile> {
        Arc::clone(&self.profile)
    }

    /// This study as a named [`SweepUnit`] (the unit borrows nothing —
    /// it shares the profile via [`Study::shared_profile`]).
    #[must_use]
    pub fn sweep_unit(&self) -> SweepUnit {
        SweepUnit::new(self.profile.program.clone(), self.shared_profile())
    }

    /// Evaluates the full `models × configs` lattice for this program on
    /// `jobs` workers. Results come back in stable `(model, config)`
    /// order — byte-identical whatever the worker count.
    #[must_use]
    pub fn sweep(&self, models: &[ExecModel], configs: &[Config], jobs: Jobs) -> Vec<EvalReport> {
        lp_runtime::sweep(
            &[self.sweep_unit()],
            models,
            configs,
            jobs,
            EvalOptions::default(),
        )
    }

    /// The compile-time analysis bundle.
    #[must_use]
    pub fn analysis(&self) -> &ModuleAnalysis {
        &self.analysis
    }

    /// The sequential run result (return value, cost, captured output).
    #[must_use]
    pub fn run_result(&self) -> &RunResult {
        &self.run
    }

    /// Table-I census for this program alone.
    #[must_use]
    pub fn census(&self) -> Census {
        Census::over([self.profile.as_ref()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lp_runtime::{best_helix, best_pdoall};
    use lp_suite::Scale;

    #[test]
    fn study_runs_a_benchmark_end_to_end() {
        let bench = lp_suite::find("456.hmmer").unwrap();
        let module = bench.build(Scale::Test);
        let study = Study::of(&module).unwrap();
        assert!(study.run_result().cost > 1000);
        let rows = study.table2_rows();
        assert_eq!(rows.len(), 14);
        for r in &rows {
            assert!(r.speedup >= 0.999, "{}: {}", r.config, r.speedup);
        }
        let (m, c) = best_helix();
        let hx = study.evaluate(m, c);
        let (explained, attr) = study.explain(m, c);
        assert_eq!(format!("{explained:?}"), format!("{hx:?}"));
        assert_eq!(
            attr.limiters.iter().map(|l| l.weight).sum::<u64>(),
            attr.total_gap(),
            "program-level limiter weights must conserve the total gap"
        );
        let (m, c) = best_pdoall();
        let pd = study.evaluate(m, c);
        assert!(hx.speedup > pd.speedup, "hmmer prefers HELIX");
        let census = study.census();
        assert!(census.executed_loops > 0);
    }

    #[test]
    fn study_sweep_matches_pointwise_evaluation() {
        let bench = lp_suite::find("eembc.matrix01").unwrap();
        let module = bench.build(Scale::Test);
        let study = Study::of(&module).unwrap();
        let models = ExecModel::all();
        let configs = Config::all();
        let swept = study.sweep(&models, &configs, Jobs::new(4));
        assert_eq!(swept.len(), models.len() * configs.len());
        let mut i = 0;
        for &model in &models {
            for &config in &configs {
                let reference = study.evaluate(model, config);
                assert_eq!(
                    format!("{reference:?}"),
                    format!("{:?}", swept[i]),
                    "{model} {config}"
                );
                i += 1;
            }
        }
        // The handle shares, not copies: one profile, two owners.
        let shared = study.shared_profile();
        assert_eq!(Arc::strong_count(&shared), 2);
        assert_eq!(shared.program, study.profile().program);
    }

    #[test]
    fn study_with_store_warm_start_matches_cold() {
        use lp_runtime::StoreMode;
        let dir = std::env::temp_dir().join(format!(
            "lp-core-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ProfileStore::open(&dir, StoreMode::ReadWrite).unwrap();
        let bench = lp_suite::find("eembc.matrix01").unwrap();
        let module = bench.build(Scale::Test);
        let cold = Study::with_store(&module, MachineConfig::default(), Some(&store)).unwrap();
        let warm = Study::with_store(&module, MachineConfig::default(), Some(&store)).unwrap();
        // Compare meta_index entry-by-entry (MetaIndex::iter is in
        // ascending key order) and the rest of the profile structurally.
        let fingerprint = |p: &Profile| {
            let idx: Vec<_> = p.meta_index.iter().collect();
            format!(
                "{} {} {:?} {:?} {:?} {idx:?}",
                p.program, p.total_cost, p.regions, p.loop_meta, p.func_names
            )
        };
        assert_eq!(
            fingerprint(cold.profile()),
            fingerprint(warm.profile()),
            "warm-start profile must be identical to cold-start"
        );
        assert_eq!(
            format!("{:?}", cold.run_result()),
            format!("{:?}", warm.run_result())
        );
        let (m, c) = best_helix();
        assert_eq!(
            format!("{:?}", cold.evaluate(m, c)),
            format!("{:?}", warm.evaluate(m, c))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn study_rejects_invalid_modules() {
        let module = Module::new("empty"); // no main
        assert!(matches!(
            Study::of(&module),
            Err(Error::Interp(_) | Error::Ir(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = Error::Interp(lp_interp::InterpError::DivByZero);
        assert!(e.to_string().contains("division"));
    }
}
