//! Author a kernel in the textual IR format, parse it, and study it —
//! the workflow for analyzing your own loops without touching the
//! builder API. Also demonstrates the printer/parser round trip.
//!
//! ```text
//! cargo run --example custom_kernel
//! ```

use loopapalooza::prelude::*;
use loopapalooza::Study;

/// A hand-written kernel: a DOALL fill followed by a pointer-style chase
/// through the filled table (a frequent non-computable register LCD).
const KERNEL: &str = r#"
module "custom"

global @table = words(258)

fn @main() -> i64 {
entry:
  br fill_header
fill_header:
  %i: i64 = phi i64 [ entry: i64 0 ], [ fill_body: %i2 ]
  %c: i1 = icmp slt %i, i64 256
  condbr %c, fill_body, chase_pre
fill_body:
  %t: i64 = mul %i, i64 167
  %nxt: i64 = add %t, i64 31
  %idx: i64 = srem %nxt, i64 256
  %slot: ptr = gep global @table, %i, scale 8, offset 0
  store %idx, %slot
  %i2: i64 = add %i, i64 1
  br fill_header
chase_pre:
  br chase_header
chase_header:
  %k: i64 = phi i64 [ chase_pre: i64 0 ], [ chase_body: %k2 ]
  %j: i64 = phi i64 [ chase_pre: i64 0 ], [ chase_body: %jn ]
  %s: i64 = phi i64 [ chase_pre: i64 0 ], [ chase_body: %s2 ]
  %cc: i1 = icmp slt %k, i64 256
  condbr %cc, chase_body, done
chase_body:
  %addr: ptr = gep global @table, %j, scale 8, offset 0
  %jn: i64 = load i64, %addr
  %h1: i64 = mul %jn, i64 2654435761
  %h2: i64 = xor %h1, i64 40503
  %h3: i64 = ashr %h2, i64 7
  %s2: i64 = add %s, %h3
  %k2: i64 = add %k, i64 1
  br chase_header
done:
  ret %s
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = lp_ir::parser::parse_module(KERNEL)?;

    // Round-trip sanity: print -> parse -> print reaches a fixpoint.
    let printed = lp_ir::printer::print_module(&module);
    let reparsed = lp_ir::parser::parse_module(&printed)?;
    assert_eq!(printed, lp_ir::printer::print_module(&reparsed));
    println!(
        "parsed module with {} functions; round-trip OK\n",
        module.functions.len()
    );

    let study = Study::of(&module)?;
    println!(
        "result = {}, sequential cost = {}\n",
        study.run_result().ret,
        study.run_result().cost
    );

    // Per-loop detail under the headline configuration.
    let (model, config) = best_helix();
    let report = study.evaluate(model, config);
    println!(
        "{model} {config}: program speedup {:.2}x, coverage {:.1}%",
        report.speedup, report.coverage
    );
    for lp in &report.loops {
        println!(
            "  loop {}@{} depth {}: {} instance(s), {} iterations, {:.2}x",
            lp.func_name,
            lp.header,
            lp.depth,
            lp.instances,
            lp.iterations,
            lp.speedup()
        );
    }

    // What the compile-time component saw.
    println!("\n{}", study.census());
    Ok(())
}
