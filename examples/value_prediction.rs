//! Value prediction for register LCDs (paper §III-C).
//!
//! First exercises the predictor bank directly on characteristic value
//! streams, then shows the end-to-end effect: `dep2` turns a predictable
//! walker-carried loop parallel under Partial-DOALL.
//!
//! ```text
//! cargo run --example value_prediction
//! ```

use loopapalooza::prelude::*;
use loopapalooza::Study;
use lp_predict::{Fcm, HybridPredictor, LastValue, Predictor, Stride, TwoDeltaStride};

fn accuracy<P: Predictor>(mut p: P, stream: &[u64]) -> f64 {
    let mut hits = 0usize;
    for &v in stream {
        if p.predict() == Some(v) {
            hits += 1;
        }
        p.update(v);
    }
    hits as f64 / stream.len() as f64
}

fn main() -> Result<(), loopapalooza::Error> {
    // Characteristic streams.
    let constant: Vec<u64> = vec![7; 200];
    let arithmetic: Vec<u64> = (0..200).map(|i| 100 + 3 * i).collect();
    let periodic: Vec<u64> = (0..200).map(|i| [3u64, 1, 4, 1, 5][i % 5]).collect();
    let chaotic: Vec<u64> = {
        let mut x = 0x1234_5678u64;
        (0..200)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 33
            })
            .collect()
    };

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "stream", "last", "stride", "2-delta", "fcm", "hybrid"
    );
    for (name, stream) in [
        ("constant", &constant),
        ("arithmetic", &arithmetic),
        ("periodic", &periodic),
        ("chaotic", &chaotic),
    ] {
        let mut hybrid = HybridPredictor::new();
        for &v in stream.iter() {
            hybrid.observe(v);
        }
        println!(
            "{:<12} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            name,
            100.0 * accuracy(LastValue::new(), stream),
            100.0 * accuracy(Stride::new(), stream),
            100.0 * accuracy(TwoDeltaStride::new(), stream),
            100.0 * accuracy(Fcm::new(), stream),
            100.0 * hybrid.stats().accuracy(),
        );
    }

    // End-to-end: 450.soplex carries predictable walkers; dep2 is the
    // flag that unlocks them under Partial-DOALL.
    let bench = lp_suite::find("450.soplex").expect("registered");
    let module = bench.build(Scale::Small);
    let study = Study::of(&module)?;
    println!("\n450.soplex (Partial-DOALL, reduc1-fn2):");
    for dep in ["dep0", "dep1", "dep2", "dep3"] {
        let config: Config = format!("reduc1-{dep}-fn2").parse().unwrap();
        let r = study.evaluate(ExecModel::PartialDoall, config);
        println!("  {dep}: {:.2}x (coverage {:.1}%)", r.speedup, r.coverage);
    }
    Ok(())
}
