//! Quickstart: build a small program with the IR builder, run the
//! Loopapalooza study on it, and print the limit speedups for all 14
//! paper configurations.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use loopapalooza::prelude::*;
use loopapalooza::Study;

fn main() -> Result<(), loopapalooza::Error> {
    // A program with two loops:
    //  1. a DOALL loop writing disjoint slots,
    //  2. a serial accumulation through one shared cell.
    let mut module = Module::new("quickstart");
    let array = module.add_global(lp_ir::Global::zeroed("array", 1026));
    let cell = module.add_global(lp_ir::Global::zeroed("cell", 1));

    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let base = fb.global_addr(array);
    let cellp = fb.global_addr(cell);
    let n = fb.const_i64(1024);
    let zero = fb.const_i64(0);
    let one = fb.const_i64(1);

    // Loop 1: array[i] = i * i  (independent iterations).
    let header = fb.create_block("l1_header");
    let body = fb.create_block("l1_body");
    let mid = fb.create_block("mid");
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Type::I64);
    let c = fb.icmp(lp_ir::IcmpPred::Slt, i, n);
    fb.cond_br(c, body, mid);
    fb.switch_to(body);
    let sq = fb.mul(i, i);
    let addr = fb.gep(base, i, 8, 0);
    fb.store(sq, addr);
    let i2 = fb.add(i, one);
    fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
    fb.add_phi_incoming(i, body, i2);
    fb.br(header);

    // Loop 2: *cell = *cell + array[j]  (a frequent memory LCD).
    fb.switch_to(mid);
    let header2 = fb.create_block("l2_header");
    let body2 = fb.create_block("l2_body");
    let exit = fb.create_block("exit");
    fb.br(header2);
    fb.switch_to(header2);
    let j = fb.phi(Type::I64);
    let c2 = fb.icmp(lp_ir::IcmpPred::Slt, j, n);
    fb.cond_br(c2, body2, exit);
    fb.switch_to(body2);
    let a = fb.gep(base, j, 8, 0);
    let v = fb.load(Type::I64, a);
    let acc = fb.load(Type::I64, cellp);
    let acc2 = fb.add(acc, v);
    fb.store(acc2, cellp);
    let j2 = fb.add(j, one);
    fb.add_phi_incoming(j, mid, zero);
    fb.add_phi_incoming(j, body2, j2);
    fb.br(header2);
    fb.switch_to(exit);
    let result = fb.load(Type::I64, cellp);
    fb.ret(Some(result));
    module.add_function(fb.finish()?);

    // One instrumented run serves every configuration.
    let study = Study::of(&module)?;
    println!(
        "program ran: result = {}, sequential cost = {} IR instructions\n",
        study.run_result().ret,
        study.run_result().cost
    );

    println!(
        "{:<14} {:<18} {:>10} {:>10}",
        "model", "config", "speedup", "coverage"
    );
    for report in study.table2_rows() {
        println!(
            "{:<14} {:<18} {:>9.2}x {:>9.1}%",
            report.model.to_string(),
            report.config.to_string(),
            report.speedup,
            report.coverage
        );
    }

    println!("\nTable-I census for this program:\n{}", study.census());
    Ok(())
}
