//! Miniature version of the paper's Figures 2–3: run one suite at a
//! chosen scale and print GEOMEAN limit speedups per configuration row.
//!
//! ```text
//! cargo run --release --example limit_study -- cint2000 small
//! cargo run --release --example limit_study -- eembc
//! ```

use loopapalooza::prelude::*;
use loopapalooza::Study;
use lp_runtime::geomean;

fn main() -> Result<(), loopapalooza::Error> {
    let args: Vec<String> = std::env::args().collect();
    let suite_name = args.get(1).map_or("cint2000", String::as_str);
    let scale = match args.get(2).map(String::as_str) {
        Some("test") => Scale::Test,
        Some("small") | None => Scale::Small,
        Some("default") => Scale::Default,
        Some(other) => {
            eprintln!("unknown scale {other:?} (use test|small|default)");
            std::process::exit(2);
        }
    };
    let suite_id = SuiteId::all()
        .into_iter()
        .find(|s| s.label() == suite_name)
        .unwrap_or_else(|| {
            eprintln!(
                "unknown suite {suite_name:?}; options: cint2000 cfp2000 cint2006 cfp2006 eembc"
            );
            std::process::exit(2);
        });

    println!("profiling suite {suite_id} at {scale:?} scale...");
    let mut studies = Vec::new();
    for bench in lp_suite::suite(suite_id) {
        let module = bench.build(scale);
        let study = Study::of(&module)?;
        println!("  {:<18} cost {:>10}", bench.name, study.run_result().cost);
        studies.push(study);
    }

    println!("\n{:<14} {:<18} {:>12}", "model", "config", "GEOMEAN");
    for (model, config) in table2_rows() {
        let speedups: Vec<f64> = studies
            .iter()
            .map(|s| s.evaluate(model, config).speedup)
            .collect();
        println!(
            "{:<14} {:<18} {:>11.2}x",
            model.to_string(),
            config.to_string(),
            geomean(&speedups)
        );
    }
    Ok(())
}
