//! Qualitative reproduction checks: the *shape* of the paper's results
//! (section IV) must hold on the synthetic suite — who wins, in what
//! order, and where the crossovers are. Absolute numbers are checked in
//! EXPERIMENTS.md against the harness output, not here.

use loopapalooza::prelude::*;
use loopapalooza::Study;
use lp_runtime::{geomean, DepMode, FnMode, ReducMode};
use std::collections::HashMap;
use std::sync::OnceLock;

struct SuiteResults {
    /// suite -> (model, config) -> geomean speedup
    speedups: HashMap<(SuiteId, ExecModel, Config), f64>,
    /// suite -> config-row -> geomean coverage
    coverage: HashMap<(SuiteId, ExecModel, Config), f64>,
    /// per-benchmark best-PDOALL and best-HELIX
    fig4: Vec<(String, f64, f64)>,
}

fn results() -> &'static SuiteResults {
    static CELL: OnceLock<SuiteResults> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut per_suite: HashMap<SuiteId, Vec<Study>> = HashMap::new();
        let mut fig4 = Vec::new();
        for b in lp_suite::registry() {
            let module = b.build(Scale::Test);
            let study = Study::of(&module).unwrap();
            if b.suite != SuiteId::Eembc {
                let (m, c) = best_pdoall();
                let pd = study.evaluate(m, c).speedup;
                let (m, c) = best_helix();
                let hx = study.evaluate(m, c).speedup;
                fig4.push((b.name.to_string(), pd, hx));
            }
            per_suite.entry(b.suite).or_default().push(study);
        }
        let mut speedups = HashMap::new();
        let mut coverage = HashMap::new();
        for (suite, studies) in &per_suite {
            for (model, config) in table2_rows() {
                let sp: Vec<f64> = studies
                    .iter()
                    .map(|s| s.evaluate(model, config).speedup)
                    .collect();
                let cov: Vec<f64> = studies
                    .iter()
                    .map(|s| s.evaluate(model, config).coverage.max(0.01))
                    .collect();
                speedups.insert((*suite, model, config), geomean(&sp));
                coverage.insert((*suite, model, config), geomean(&cov));
            }
        }
        SuiteResults {
            speedups,
            coverage,
            fig4,
        }
    })
}

fn gm(suite: SuiteId, model: ExecModel, config: &str) -> f64 {
    let config: Config = config.parse().unwrap();
    *results()
        .speedups
        .get(&(suite, model, config))
        .unwrap_or_else(|| panic!("missing row {suite} {model} {config}"))
}

#[test]
fn doall_int_is_marginal_fp_is_modest() {
    // Paper: CINT 1.1-1.3x under DOALL; CFP 1.6-3.6x.
    for suite in [SuiteId::Cint2000, SuiteId::Cint2006] {
        let s = gm(suite, ExecModel::Doall, "reduc0-dep0-fn0");
        assert!(s < 2.0, "{suite} DOALL should be marginal: {s:.2}");
    }
    for suite in [SuiteId::Cfp2000, SuiteId::Cfp2006] {
        let s = gm(suite, ExecModel::Doall, "reduc0-dep0-fn0");
        let i = gm(SuiteId::Cint2000, ExecModel::Doall, "reduc0-dep0-fn0");
        assert!(s > i, "{suite} DOALL ({s:.2}) should beat CINT ({i:.2})");
    }
}

#[test]
fn helix_dep1_is_the_headline_for_int() {
    // Paper: 4.6x / 7.2x for CINT2000/2006 under reduc1-dep1-fn2 HELIX —
    // the big jump over every PDOALL configuration.
    for suite in [SuiteId::Cint2000, SuiteId::Cint2006] {
        let helix = gm(suite, ExecModel::Helix, "reduc1-dep1-fn2");
        let best_pd = gm(suite, ExecModel::PartialDoall, "reduc1-dep2-fn2");
        assert!(helix > 2.0, "{suite}: headline HELIX too weak: {helix:.2}");
        assert!(
            helix > best_pd,
            "{suite}: HELIX ({helix:.2}) must beat best realistic PDOALL ({best_pd:.2})"
        );
    }
    // And 2006 > 2000, as in the paper.
    let h2000 = gm(SuiteId::Cint2000, ExecModel::Helix, "reduc1-dep1-fn2");
    let h2006 = gm(SuiteId::Cint2006, ExecModel::Helix, "reduc1-dep1-fn2");
    assert!(
        h2006 > h2000,
        "CINT2006 ({h2006:.2}) should outrun CINT2000 ({h2000:.2})"
    );
}

#[test]
fn numeric_suites_tower_over_int() {
    for (model, config) in table2_rows() {
        let fp = results().speedups[&(SuiteId::Cfp2000, model, config)];
        let int = results().speedups[&(SuiteId::Cint2000, model, config)];
        assert!(
            fp >= int * 0.9,
            "{model} {config}: CFP2000 {fp:.2} unexpectedly below CINT2000 {int:.2}"
        );
    }
    // The best HELIX row: numeric suites in the tens, INT in single digits.
    let fp = gm(SuiteId::Cfp2000, ExecModel::Helix, "reduc1-dep1-fn2");
    let int = gm(SuiteId::Cint2000, ExecModel::Helix, "reduc1-dep1-fn2");
    assert!(
        fp > 2.0 * int,
        "numeric headline ({fp:.2}) should dwarf INT ({int:.2})"
    );
}

#[test]
fn dep2_helps_int_under_pdoall() {
    // Paper: reduc0-dep2-fn0 PDOALL lifts CINT from 1.1-1.3 to 1.2-1.6.
    for suite in [SuiteId::Cint2000, SuiteId::Cint2006] {
        let base = gm(suite, ExecModel::PartialDoall, "reduc0-dep0-fn0");
        let dep2 = gm(suite, ExecModel::PartialDoall, "reduc0-dep2-fn0");
        assert!(
            dep2 >= base,
            "{suite}: dep2 ({dep2:.2}) must not lose to dep0 ({base:.2})"
        );
    }
}

#[test]
fn eembc_gains_more_from_fn2_than_from_reduc_and_dep2() {
    // Paper: EEMBC does better with reduc0-dep0-fn2 than reduc1-dep2-fn0.
    let fn2 = gm(SuiteId::Eembc, ExecModel::PartialDoall, "reduc0-dep0-fn2");
    let dep2 = gm(SuiteId::Eembc, ExecModel::PartialDoall, "reduc1-dep2-fn0");
    assert!(
        fn2 > dep2,
        "EEMBC: fn2 ({fn2:.2}) should beat reduc1+dep2 ({dep2:.2})"
    );
}

#[test]
fn coverage_climbs_toward_helix_dep1() {
    // Paper Fig. 5: coverage rises dramatically from dep0-fn2 PDOALL to
    // dep0-fn2 HELIX to dep1-fn2 HELIX for the INT suites.
    for suite in [SuiteId::Cint2000, SuiteId::Cint2006] {
        let cfg0: Config = "reduc0-dep0-fn2".parse().unwrap();
        let cfg1: Config = "reduc0-dep1-fn2".parse().unwrap();
        let pd = results().coverage[&(suite, ExecModel::PartialDoall, cfg0)];
        let hx0 = results().coverage[&(suite, ExecModel::Helix, cfg0)];
        let hx1 = results().coverage[&(suite, ExecModel::Helix, cfg1)];
        assert!(
            pd <= hx0 + 1e-9 && hx0 <= hx1 + 1e-9,
            "{suite}: coverage must climb: PDOALL {pd:.1} <= HELIX-dep0 {hx0:.1} <= HELIX-dep1 {hx1:.1}"
        );
        assert!(
            hx1 > pd,
            "{suite}: HELIX dep1 coverage ({hx1:.1}) must exceed PDOALL ({pd:.1})"
        );
    }
}

#[test]
fn fig4_has_pdoall_winners_and_helix_winners() {
    // Paper: HELIX wins on most SPEC benchmarks, but 179.art, 450.soplex,
    // 482.sphinx3 and 429.mcf go to PDOALL.
    let fig4 = &results().fig4;
    let pdoall_winners: Vec<&str> = fig4
        .iter()
        .filter(|(_, pd, hx)| pd > hx)
        .map(|(n, _, _)| n.as_str())
        .collect();
    for expected in ["179.art", "450.soplex", "482.sphinx3", "429.mcf"] {
        assert!(
            pdoall_winners.contains(&expected),
            "{expected} should prefer PDOALL; winners: {pdoall_winners:?}"
        );
    }
    let helix_wins = fig4.iter().filter(|(_, pd, hx)| hx >= pd).count();
    assert!(
        helix_wins * 2 > fig4.len(),
        "HELIX should win the majority of SPEC ({helix_wins}/{})",
        fig4.len()
    );
}

#[test]
fn unrealistic_dep3_fn3_unlocks_more_int_parallelism() {
    // Paper: reduc0-dep3-fn3 PDOALL raises CINT2000 to 2.0x and CINT2006
    // to 2.6x over their dep2-fn2 values.
    for suite in [SuiteId::Cint2000, SuiteId::Cint2006] {
        let realistic = gm(suite, ExecModel::PartialDoall, "reduc0-dep2-fn2");
        let perfect = gm(suite, ExecModel::PartialDoall, "reduc0-dep3-fn3");
        assert!(
            perfect >= realistic,
            "{suite}: perfect prediction must not lose ({perfect:.2} vs {realistic:.2})"
        );
    }
}

#[test]
fn reduc1_matters_most_for_cfp2000() {
    // Paper: "SpecFP2000 benefits greatly from both reduc1 and dep2".
    let r0 = gm(SuiteId::Cfp2000, ExecModel::Doall, "reduc0-dep0-fn0");
    let r1 = gm(SuiteId::Cfp2000, ExecModel::Doall, "reduc1-dep0-fn0");
    assert!(
        r1 > r0 * 1.05,
        "CFP2000 DOALL should gain from reduc1: {r0:.2} -> {r1:.2}"
    );
}

// Keep the unused-import lints honest.
#[allow(unused_imports)]
use lp_runtime as _runtime_reexport_check;
const _: fn() = || {
    let _ = (ReducMode::Reduc0, DepMode::Dep0, FnMode::Fn0);
};
