//! Printer/parser fidelity across the whole suite: every benchmark
//! module must survive `print -> parse -> print` (fixpoint) and the
//! reparsed module must execute to the *same* result with the *same*
//! dynamic cost — i.e. the textual format loses nothing the limit study
//! depends on.

use lp_interp::{Exec, ExecUnit};
use lp_ir::parser::parse_module;
use lp_ir::printer::print_module;
use lp_suite::Scale;

#[test]
fn every_benchmark_round_trips_through_text() {
    for b in lp_suite::registry() {
        let module = b.build(Scale::Test);
        // Parsing renumbers values (named defs first, constants after),
        // so the fixpoint is reached after one normalization pass.
        let text1 = print_module(&module);
        let reparsed =
            parse_module(&text1).unwrap_or_else(|e| panic!("{}: reparse failed: {e}", b.name));
        let text2 = print_module(&reparsed);
        let normalized =
            parse_module(&text2).unwrap_or_else(|e| panic!("{}: re-reparse failed: {e}", b.name));
        let text3 = print_module(&normalized);
        assert_eq!(text2, text3, "{}: printer/parser not a fixpoint", b.name);

        let run = |m: &lp_ir::Module| {
            let unit = ExecUnit::new(m);
            Exec::new(&unit).run(&[]).unwrap().result
        };
        let original = run(&module);
        let replayed = run(&reparsed);
        assert_eq!(original.ret, replayed.ret, "{}: result changed", b.name);
        assert_eq!(original.cost, replayed.cost, "{}: cost changed", b.name);
    }
}

#[test]
fn reparsed_module_passes_all_verifiers() {
    for b in lp_suite::registry().into_iter().take(8) {
        let module = b.build(Scale::Test);
        let reparsed = parse_module(&print_module(&module)).unwrap();
        lp_ir::verify_module(&reparsed).unwrap();
        lp_analysis::verify_ssa(&reparsed).unwrap();
    }
}

#[test]
fn analysis_results_survive_the_round_trip() {
    // Loop structure and LCD classification are semantic properties of
    // the program text; the reparsed module must classify identically.
    let b = lp_suite::find("456.hmmer").unwrap();
    let module = b.build(Scale::Test);
    let reparsed = parse_module(&print_module(&module)).unwrap();
    let a1 = lp_analysis::analyze_module(&module);
    let a2 = lp_analysis::analyze_module(&reparsed);
    for (f1, f2) in a1.functions.iter().zip(&a2.functions) {
        assert_eq!(f1.loops.len(), f2.loops.len());
        for (l1, l2) in f1.lcds.iter().zip(&f2.lcds) {
            let c1: Vec<_> = l1.phis.iter().map(|(_, c)| *c).collect();
            let c2: Vec<_> = l2.phis.iter().map(|(_, c)| *c).collect();
            assert_eq!(c1, c2, "LCD classes diverged after round trip");
        }
    }
}
