//! Per-benchmark dependence-character assertions: each synthetic stand-in
//! must actually exhibit the constraints its recipe claims (DESIGN.md §2's
//! substitution argument is only as good as these hold).

use loopapalooza::Study;
use lp_runtime::{CallClass, Census, RegionKind};
use lp_suite::{Scale, SuiteId};
use std::collections::HashMap;

struct Character {
    census: Census,
    has_unsafe_call: bool,
    has_instrumented_call: bool,
    best_helix: f64,
    best_pdoall: f64,
}

fn characters() -> HashMap<String, Character> {
    let mut out = HashMap::new();
    for b in lp_suite::registry() {
        let module = b.build(Scale::Test);
        let study = Study::of(&module).unwrap();
        let census = study.census();
        let mut has_unsafe_call = false;
        let mut has_instrumented_call = false;
        for region in &study.profile().regions {
            if let RegionKind::Loop(inst) = &region.kind {
                has_unsafe_call |= inst.call_class >= CallClass::UnsafeCalls;
                has_instrumented_call |= inst.call_class >= CallClass::InstrumentedCalls;
            }
        }
        let (m, c) = lp_runtime::best_helix();
        let best_helix = study.evaluate(m, c).speedup;
        let (m, c) = lp_runtime::best_pdoall();
        let best_pdoall = study.evaluate(m, c).speedup;
        out.insert(
            b.name.to_string(),
            Character {
                census,
                has_unsafe_call,
                has_instrumented_call,
                best_helix,
                best_pdoall,
            },
        );
    }
    out
}

#[test]
fn every_benchmark_exhibits_its_claimed_character() {
    let chars = characters();
    let c = |name: &str| chars.get(name).unwrap_or_else(|| panic!("missing {name}"));

    // Chase-bound INT codes carry unpredictable non-computable LCDs.
    for name in ["181.mcf", "197.parser", "471.omnetpp", "473.astar"] {
        assert!(
            c(name).census.unpredictable > 0,
            "{name} must carry unpredictable register LCDs"
        );
    }
    // The Fig. 4 PDOALL winners carry *predictable* LCDs.
    for name in ["429.mcf", "179.art", "450.soplex", "482.sphinx3"] {
        assert!(
            c(name).census.predictable > 0,
            "{name} must carry predictable register LCDs"
        );
        assert!(
            c(name).best_pdoall > c(name).best_helix,
            "{name} must prefer PDOALL"
        );
    }
    // I/O-in-loop benchmarks show unsafe calls; call-heavy ones show
    // instrumented calls.
    for name in ["253.perlbmk", "400.perlbench"] {
        assert!(c(name).has_unsafe_call, "{name} prints from a loop");
    }
    for name in ["176.gcc", "255.vortex", "483.xalancbmk", "eembc.aifftr01"] {
        assert!(
            c(name).has_instrumented_call,
            "{name} calls helpers from loops"
        );
    }
    // Every benchmark carries frequent memory LCDs somewhere (the glue
    // guarantees it) and at least one reduction or computable IV.
    for (name, ch) in &chars {
        assert!(
            ch.census.frequent_mem_loops > 0,
            "{name}: no frequent memory LCDs at all"
        );
        assert!(ch.census.computable > 0, "{name}: no IVs?!");
    }
}

#[test]
fn suite_level_character_matches_the_paper_narrative() {
    let chars = characters();
    let suite_avg = |suite: SuiteId, f: &dyn Fn(&Character) -> f64| -> f64 {
        let names: Vec<_> = lp_suite::suite(suite).iter().map(|b| b.name).collect();
        let vals: Vec<f64> = names.iter().map(|n| f(&chars[*n])).collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    // Frequent-memory pressure: INT suites have a higher share of
    // frequent-memory loops than CFP suites.
    let freq_share =
        |c: &Character| c.census.frequent_mem_loops as f64 / c.census.executed_loops.max(1) as f64;
    let int_share = suite_avg(SuiteId::Cint2000, &freq_share);
    let fp_share = suite_avg(SuiteId::Cfp2000, &freq_share);
    assert!(
        int_share > fp_share,
        "INT must be more memory-serial: {int_share:.2} vs {fp_share:.2}"
    );
    // Reduction density: CFP suites carry more reductions per program.
    let reds = |c: &Character| c.census.reductions as f64;
    assert!(suite_avg(SuiteId::Cfp2000, &reds) > suite_avg(SuiteId::Cint2000, &reds));
    // HELIX headline ordering: numeric > INT2006 > INT2000 (geometric-ish
    // via arithmetic mean is fine for the ordering).
    let hx = |c: &Character| c.best_helix;
    assert!(suite_avg(SuiteId::Cfp2000, &hx) > suite_avg(SuiteId::Cint2006, &hx));
    assert!(suite_avg(SuiteId::Cint2006, &hx) > suite_avg(SuiteId::Cint2000, &hx));
}
