//! Cross-crate checks for the IR transform passes: `simplify` must never
//! change a program's observable behaviour, and the dynamic cost after
//! simplification can only shrink. Run over every suite benchmark, this
//! doubles as a differential test between `lp_ir::transform`'s folding
//! arithmetic and `lp_interp`'s execution semantics.

use lp_interp::{Exec, ExecUnit};
use lp_suite::Scale;

#[test]
fn simplify_preserves_behaviour_and_never_increases_cost() {
    for b in lp_suite::registry() {
        let module = b.build(Scale::Test);
        let mut optimized = module.clone();
        let stats = lp_ir::simplify(&mut optimized);
        lp_ir::verify_module(&optimized)
            .unwrap_or_else(|e| panic!("{}: simplify broke the module: {e}", b.name));
        lp_analysis::verify_ssa(&optimized)
            .unwrap_or_else(|e| panic!("{}: simplify broke SSA: {e}", b.name));

        let run = |m: &lp_ir::Module| {
            let unit = ExecUnit::new(m);
            Exec::new(&unit).run(&[]).unwrap().result
        };
        let before = run(&module);
        let after = run(&optimized);
        assert_eq!(before.ret, after.ret, "{}: result changed", b.name);
        assert!(
            after.cost <= before.cost,
            "{}: cost grew {} -> {}",
            b.name,
            before.cost,
            after.cost
        );
        // The generators emit reasonably tight code, but folding should
        // still find something somewhere in the suite.
        let _ = stats;
    }
}

#[test]
fn simplify_finds_work_in_sloppy_code() {
    use lp_ir::builder::FunctionBuilder;
    use lp_ir::{Module, Type};

    let mut m = Module::new("sloppy");
    let g = m.add_global(lp_ir::Global::zeroed("g", 1));
    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let a = fb.const_i64(20);
    let b = fb.const_i64(2);
    let c = fb.mul(a, b); // 40
    let zero = fb.const_i64(0);
    let d = fb.add(c, zero); // identity
                             // A dead chain rooted in a load (not foldable, so DCE must kill it).
    let p = fb.global_addr(g);
    let dead_load = fb.load(Type::I64, p);
    let dead = fb.mul(dead_load, dead_load);
    let _deader = fb.add(dead, a);
    let two = fb.const_i64(2);
    let r = fb.add(d, two); // 42
    fb.ret(Some(r));
    m.add_function(fb.finish().unwrap());

    let before_cost = {
        let unit = ExecUnit::new(&m);
        Exec::new(&unit).run(&[]).unwrap().result.cost
    };
    let stats = lp_ir::simplify(&mut m);
    assert!(stats.folded >= 3, "{stats:?}");
    assert!(stats.removed >= 2, "{stats:?}");
    let unit = ExecUnit::new(&m);
    let after = Exec::new(&unit).run(&[]).unwrap().result;
    assert_eq!(after.ret, lp_interp::Value::I(42));
    assert!(after.cost < before_cost);
}

#[test]
fn classification_is_stable_under_simplify() {
    // Simplification must not change how the compile-time component
    // classifies register LCDs (loops and phis are untouched).
    for name in ["456.hmmer", "429.mcf", "179.art"] {
        let module = lp_suite::find(name).unwrap().build(Scale::Test);
        let mut optimized = module.clone();
        lp_ir::simplify(&mut optimized);
        let a1 = lp_analysis::analyze_module(&module);
        let a2 = lp_analysis::analyze_module(&optimized);
        for (f1, f2) in a1.functions.iter().zip(&a2.functions) {
            assert_eq!(f1.loops.len(), f2.loops.len(), "{name}: loop count changed");
            for (l1, l2) in f1.lcds.iter().zip(&f2.lcds) {
                let c1: Vec<_> = l1.phis.iter().map(|(_, c)| *c).collect();
                let c2: Vec<_> = l2.phis.iter().map(|(_, c)| *c).collect();
                assert_eq!(c1, c2, "{name}: LCD classes changed under simplify");
            }
        }
    }
}
