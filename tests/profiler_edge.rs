//! Edge-case behaviour of the profiler: recursion, loops exited by
//! `return`, fuel exhaustion, bounded-core evaluation, and the SP-hazard
//! ablation — the paths ordinary benchmarks do not stress.

use lp_analysis::analyze_module;
use lp_interp::{InterpError, MachineConfig, Value};
use lp_ir::builder::FunctionBuilder;
use lp_ir::{BlockId, FuncId, Global, IcmpPred, Module, Type};
use lp_runtime::{
    evaluate, evaluate_with, profile_module, profile_module_with, EvalOptions, ExecModel,
    ProfilerOptions, RegionKind,
};
use lp_suite::Scale;

/// `fn fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)`, called from a loop.
fn recursive_module() -> Module {
    let mut m = Module::new("recur");
    let mut fb = FunctionBuilder::new("fib", &[Type::I64], Type::I64);
    let n = fb.param(0);
    let two = fb.const_i64(2);
    let one = fb.const_i64(1);
    let rec = fb.create_block("rec");
    let base = fb.create_block("base");
    let c = fb.icmp(IcmpPred::Slt, n, two);
    fb.cond_br(c, base, rec);
    fb.switch_to(base);
    fb.ret(Some(n));
    fb.switch_to(rec);
    let n1 = fb.sub(n, one);
    let n2 = fb.sub(n, two);
    // Self-recursion: fib is FuncId(0) by construction order.
    let a = fb.call(FuncId(0), Type::I64, &[n1]);
    let b = fb.call(FuncId(0), Type::I64, &[n2]);
    let r = fb.add(a, b);
    fb.ret(Some(r));
    m.add_function(fb.finish().unwrap());

    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let zero = fb.const_i64(0);
    let one = fb.const_i64(1);
    let eight = fb.const_i64(8);
    let header = fb.create_block("header");
    let body = fb.create_block("body");
    let exit = fb.create_block("exit");
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Type::I64);
    let s = fb.phi(Type::I64);
    let c = fb.icmp(IcmpPred::Slt, i, eight);
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let f = fb.call(FuncId(0), Type::I64, &[i]);
    let s2 = fb.add(s, f);
    let i2 = fb.add(i, one);
    fb.add_phi_incoming(i, BlockId::ENTRY, zero);
    fb.add_phi_incoming(i, body, i2);
    fb.add_phi_incoming(s, BlockId::ENTRY, zero);
    fb.add_phi_incoming(s, body, s2);
    fb.br(header);
    fb.switch_to(exit);
    fb.ret(Some(s));
    m.add_function(fb.finish().unwrap());
    m
}

#[test]
fn recursion_profiles_cleanly() {
    let m = recursive_module();
    let analysis = analyze_module(&m);
    let (p, run) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
    // fib(0..8) summed = 0+1+1+2+3+5+8+13 = 33.
    assert_eq!(run.ret, Value::I(33));
    assert_eq!(p.total_cost, run.cost);
    // The region tree contains one call region per dynamic fib activation
    // plus main; all properly nested.
    let calls = p
        .regions
        .iter()
        .filter(|r| matches!(r.kind, RegionKind::Call { .. }))
        .count();
    assert!(calls > 8, "expected many fib activations, got {calls}");
    for r in &p.regions {
        assert!(r.start <= r.end);
    }
    // Every model/config still yields sane results.
    for model in ExecModel::all() {
        let rep = evaluate(&p, model, "reduc1-dep3-fn3".parse().unwrap());
        assert!(rep.speedup >= 0.999);
    }
}

/// A loop that returns from its body mid-iteration (loop exited by `ret`).
#[test]
fn early_return_from_loop_closes_regions() {
    let mut m = Module::new("early");
    let g = m.add_global(Global::zeroed("a", 64));
    let mut fb = FunctionBuilder::new("scan", &[Type::I64], Type::I64);
    let target = fb.param(0);
    let base = fb.global_addr(g);
    let zero = fb.const_i64(0);
    let one = fb.const_i64(1);
    let sixty_four = fb.const_i64(64);
    let header = fb.create_block("header");
    let body = fb.create_block("body");
    let found = fb.create_block("found");
    let exit = fb.create_block("exit");
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Type::I64);
    let c = fb.icmp(IcmpPred::Slt, i, sixty_four);
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let addr = fb.gep(base, i, 8, 0);
    let v = fb.load(Type::I64, addr);
    let hit = fb.icmp(IcmpPred::Eq, v, target);
    let cont = fb.create_block("cont");
    fb.cond_br(hit, found, cont);
    fb.switch_to(found);
    fb.ret(Some(i)); // return from inside the loop
    fb.switch_to(cont);
    let i2 = fb.add(i, one);
    fb.add_phi_incoming(i, BlockId::ENTRY, zero);
    fb.add_phi_incoming(i, cont, i2);
    fb.br(header);
    fb.switch_to(exit);
    let neg = fb.const_i64(-1);
    fb.ret(Some(neg));
    let scan = m.add_function(fb.finish().unwrap());

    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let key = fb.const_i64(0); // zeroed array: hit at index 0
    let r = fb.call(scan, Type::I64, &[key]);
    fb.ret(Some(r));
    m.add_function(fb.finish().unwrap());

    let analysis = analyze_module(&m);
    let (p, run) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
    assert_eq!(run.ret, Value::I(0));
    // The loop instance must be closed (end >= start) despite the return.
    for (_, region, inst) in p.loop_instances() {
        assert!(region.end >= region.start);
        assert!(inst.iterations() >= 1);
    }
    assert_eq!(p.region(p.root()).end, p.total_cost);
}

#[test]
fn fuel_exhaustion_surfaces_as_error() {
    let m = lp_suite::find("181.mcf").unwrap().build(Scale::Test);
    let analysis = analyze_module(&m);
    let config = MachineConfig {
        max_cost: 500,
        ..MachineConfig::default()
    };
    let err = profile_module(&m, &analysis, &[], config).unwrap_err();
    assert_eq!(err, InterpError::FuelExhausted);
}

#[test]
fn bounded_cores_interpolate_between_serial_and_limit() {
    let m = lp_suite::find("171.swim").unwrap().build(Scale::Test);
    let analysis = analyze_module(&m);
    let (p, _) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
    let (model, config) = lp_runtime::best_helix();
    let at = |cores| {
        evaluate_with(
            &p,
            model,
            config,
            EvalOptions {
                cores,
                ..EvalOptions::default()
            },
        )
        .speedup
    };
    let s1 = at(Some(1));
    let s4 = at(Some(4));
    let s16 = at(Some(16));
    let inf = at(None);
    assert!(s1 <= 1.001, "1 core cannot speed up: {s1}");
    assert!(
        s1 <= s4 && s4 <= s16 && s16 <= inf * 1.0001,
        "monotone in cores"
    );
    assert!(s16 > s4, "swim should keep scaling at 16 cores");
}

#[test]
fn sp_hazard_serializes_call_loops_without_cactus_stack() {
    let m = lp_suite::find("eembc.basefp01").unwrap().build(Scale::Test);
    let analysis = analyze_module(&m);
    let (model, config) = lp_runtime::best_pdoall();
    let speedup = |cactus| {
        let (p, _) = profile_module_with(
            &m,
            &analysis,
            &[],
            MachineConfig::default(),
            ProfilerOptions {
                cactus_stack: cactus,
            },
        )
        .unwrap();
        evaluate(&p, model, config).speedup
    };
    let with = speedup(true);
    let without = speedup(false);
    assert!(
        with > without * 1.5,
        "structural hazard must bite: with {with}, without {without}"
    );
}

/// A loop that calls a function which itself contains a loop: the callee's
/// loop instances must attach under the caller's iteration (nested
/// multi-level parallelism through the call graph, as SWARM/T4 exploits).
#[test]
fn loops_inside_callees_nest_under_caller_iterations() {
    let mut m = Module::new("nested_call");
    let g = m.add_global(Global::zeroed("out", 160));

    // callee: writes 8 disjoint slots starting at base+off*8.
    let mut fb = FunctionBuilder::new("fill8", &[Type::Ptr, Type::I64], Type::Void);
    let base = fb.param(0);
    let off = fb.param(1);
    let zero = fb.const_i64(0);
    let one = fb.const_i64(1);
    let eight = fb.const_i64(8);
    let header = fb.create_block("header");
    let body = fb.create_block("body");
    let exit = fb.create_block("exit");
    fb.br(header);
    fb.switch_to(header);
    let j = fb.phi(Type::I64);
    let c = fb.icmp(IcmpPred::Slt, j, eight);
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let idx = fb.add(off, j);
    let addr = fb.gep(base, idx, 8, 0);
    fb.store(idx, addr);
    let j2 = fb.add(j, one);
    fb.add_phi_incoming(j, BlockId::ENTRY, zero);
    fb.add_phi_incoming(j, body, j2);
    fb.br(header);
    fb.switch_to(exit);
    fb.ret(None);
    let fill8 = m.add_function(fb.finish().unwrap());

    // main: for i in 0..16 { fill8(out, i*8) }
    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let base = fb.global_addr(g);
    let zero = fb.const_i64(0);
    let one = fb.const_i64(1);
    let sixteen = fb.const_i64(16);
    let eight = fb.const_i64(8);
    let header = fb.create_block("header");
    let body = fb.create_block("body");
    let exit = fb.create_block("exit");
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Type::I64);
    let c = fb.icmp(IcmpPred::Slt, i, sixteen);
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let off = fb.mul(i, eight);
    fb.call(fill8, Type::Void, &[base, off]);
    let i2 = fb.add(i, one);
    fb.add_phi_incoming(i, BlockId::ENTRY, zero);
    fb.add_phi_incoming(i, body, i2);
    fb.br(header);
    fb.switch_to(exit);
    fb.ret(Some(zero));
    m.add_function(fb.finish().unwrap());

    let analysis = analyze_module(&m);
    let (p, _) = profile_module(&m, &analysis, &[], MachineConfig::default()).unwrap();
    // 1 outer instance + 16 callee instances.
    let instances = p.loop_instances().count();
    assert_eq!(instances, 17);
    // Each callee loop instance's parent chain passes through a call
    // region that is a child of the outer loop instance.
    let outer = p
        .loop_instances()
        .find(|(_, _, inst)| inst.iterations() == 17)
        .expect("outer loop instance");
    let outer_id = outer.0;
    let mut under_outer = 0;
    for (_, region, inst) in p.loop_instances() {
        if inst.iterations() == 9 {
            let call_region = p.region(region.parent.expect("callee loop has parent"));
            assert!(matches!(call_region.kind, RegionKind::Call { .. }));
            if call_region.parent == Some(outer_id) {
                under_outer += 1;
            }
        }
    }
    assert_eq!(under_outer, 16, "all fill8 loops nest under the outer loop");

    // Both levels parallelize: disjoint writes + computable IVs. The
    // whole-program speedup approaches 16*8 with fn2.
    let r = evaluate(
        &p,
        ExecModel::PartialDoall,
        "reduc0-dep0-fn2".parse().unwrap(),
    );
    assert!(
        r.speedup > 12.0,
        "nested parallelism must compose: {}",
        r.speedup
    );
}
