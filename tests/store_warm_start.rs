//! Warm-start differential for the persistent profile store: a sweep
//! whose profiles came out of `results/.lp-cache`-style storage must
//! export **byte-identical** CSV and JSON to a cold, freshly-profiled
//! sweep — at 1, 2, and 8 workers — while actually hitting the store
//! (`store.hits` counters advance). This is the end-to-end contract of
//! `--profile-cache`: the cache can change wall-clock time, never a
//! figure.

use loopapalooza::prelude::*;
use loopapalooza::Study;
use lp_interp::MachineConfig;
use lp_runtime::export::reports_to_csv;
use lp_runtime::{sweep, EvalOptions, Export, SweepExport};
use lp_suite::Scale;

const BENCHES: [&str; 3] = ["eembc.matrix01", "eembc.rspeed01", "181.mcf"];

fn scratch_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lp-warm-start-{}", std::process::id()))
}

fn units_with(store: Option<&ProfileStore>) -> Vec<SweepUnit> {
    BENCHES
        .iter()
        .map(|name| {
            let bench = lp_suite::find(name).expect("registered benchmark");
            let module = bench.build(Scale::Test);
            Study::with_store(&module, MachineConfig::default(), store)
                .expect("benchmark runs")
                .sweep_unit()
        })
        .collect()
}

#[test]
fn warm_start_sweep_is_byte_identical_to_cold_at_any_job_count() {
    let dir = scratch_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let store = ProfileStore::open(&dir, StoreMode::ReadWrite).expect("open store");
    let counters = lp_obs::registry().counters();

    // Cold reference: no store at all.
    let cold_units = units_with(None);
    let models = ExecModel::all();
    let configs = Config::all();
    let run = |units: &[SweepUnit], jobs: usize| {
        let reports = sweep(
            units,
            &models,
            &configs,
            Jobs::new(jobs),
            EvalOptions::default(),
        );
        (reports_to_csv(&reports), SweepExport(&reports).to_json())
    };
    let (cold_csv, cold_json) = run(&cold_units, 1);

    // First pass against the empty store: misses, then persists.
    let misses_before = counters.get(lp_obs::Counter::StoreMisses);
    let first_units = units_with(Some(&store));
    assert!(
        counters.get(lp_obs::Counter::StoreMisses) >= misses_before + BENCHES.len() as u64,
        "first pass must miss once per benchmark"
    );
    let (first_csv, first_json) = run(&first_units, 1);
    assert_eq!(cold_csv, first_csv, "populating pass diverged from cold");
    assert_eq!(cold_json, first_json, "populating pass diverged from cold");

    // Warm passes: profiles come from disk, output must not move a byte.
    for jobs in [1usize, 2, 8] {
        let hits_before = counters.get(lp_obs::Counter::StoreHits);
        let warm_units = units_with(Some(&store));
        assert!(
            counters.get(lp_obs::Counter::StoreHits) >= hits_before + BENCHES.len() as u64,
            "warm pass must hit once per benchmark (jobs={jobs})"
        );
        let (warm_csv, warm_json) = run(&warm_units, jobs);
        assert_eq!(cold_csv, warm_csv, "CSV diverged warm at jobs={jobs}");
        assert_eq!(cold_json, warm_json, "JSON diverged warm at jobs={jobs}");
    }
    assert_eq!(
        counters.get(lp_obs::Counter::StoreCorruptDiscarded),
        0,
        "no entry may be discarded in a clean warm start"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
