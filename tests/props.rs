//! Property-based tests (proptest) over the whole stack: randomly
//! composed loop programs must verify, execute deterministically, and
//! satisfy the limit-study invariants under every model/configuration;
//! the cost models and predictors must satisfy their algebraic bounds.

use lp_interp::{Exec, ExecUnit};
use lp_ir::builder::FunctionBuilder;
use lp_ir::{Global, Module, Type, ValueId};
use lp_predict::{HybridPredictor, LastValue, Predictor, Stride};
use lp_runtime::model::{doall_cost, helix_cost, pdoall_cost};
use lp_runtime::{
    evaluate, evaluate_explained, profile_module, sweep, Config, EvalOptions, ExecModel, Jobs,
    RegionKind, SweepUnit,
};
use lp_suite::kernels::counted_loop;
use proptest::prelude::*;

/// One randomly chosen loop in a generated program.
#[derive(Debug, Clone)]
enum LoopSpec {
    /// DOALL: `a[i] = f(i)`.
    Fill { n: i64, mul: i64 },
    /// Reduction: `s += a[i]`.
    Sum { n: i64 },
    /// Carried LCG: unpredictable register LCD.
    Lcg { n: i64, seed: i64 },
    /// Shared-cell read-modify-write: frequent memory LCD.
    Cell { n: i64 },
    /// Nested: outer DOALL over inner reduction.
    Nested { outer: i64, inner: i64 },
}

fn loop_spec() -> impl Strategy<Value = LoopSpec> {
    prop_oneof![
        (2i64..60, 1i64..100).prop_map(|(n, mul)| LoopSpec::Fill { n, mul }),
        (2i64..60).prop_map(|n| LoopSpec::Sum { n }),
        (2i64..40, 1i64..1_000_000).prop_map(|(n, seed)| LoopSpec::Lcg { n, seed }),
        (2i64..40).prop_map(|n| LoopSpec::Cell { n }),
        (2i64..12, 2i64..12).prop_map(|(outer, inner)| LoopSpec::Nested { outer, inner }),
    ]
}

/// Builds a runnable module from a list of loop specs.
fn build_program(specs: &[LoopSpec]) -> Module {
    let mut module = Module::new("prop");
    let array = module.add_global(Global::zeroed("a", 256));
    let cell = module.add_global(Global::zeroed("c", 2));
    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let base = fb.global_addr(array);
    let cellp = fb.global_addr(cell);
    let mut checksum = fb.const_i64(0);
    for spec in specs {
        let v: ValueId = match *spec {
            LoopSpec::Fill { n, mul } => {
                let nn = fb.const_i64(n.min(200));
                let m = fb.const_i64(mul);
                counted_loop(&mut fb, nn, &[], |fb, i, _| {
                    let t = fb.mul(i, m);
                    let idx = fb.srem(i, nn);
                    let a = fb.gep(base, idx, 8, 0);
                    fb.store(t, a);
                    vec![]
                });
                fb.const_i64(n)
            }
            LoopSpec::Sum { n } => {
                let nn = fb.const_i64(n.min(200));
                let z = fb.const_i64(0);
                let phis = counted_loop(&mut fb, nn, &[(Type::I64, z)], |fb, i, phis| {
                    let idx = fb.srem(i, nn);
                    let a = fb.gep(base, idx, 8, 0);
                    let v = fb.load(Type::I64, a);
                    vec![fb.add(phis[0], v)]
                });
                phis[0]
            }
            LoopSpec::Lcg { n, seed } => {
                let nn = fb.const_i64(n);
                let s = fb.const_i64(seed);
                let phis = counted_loop(&mut fb, nn, &[(Type::I64, s)], |fb, _i, phis| {
                    let k = fb.const_i64(6364136223846793005u64 as i64);
                    let c = fb.const_i64(1442695040888963407u64 as i64);
                    let t = fb.mul(phis[0], k);
                    vec![fb.add(t, c)]
                });
                phis[0]
            }
            LoopSpec::Cell { n } => {
                let nn = fb.const_i64(n);
                let one = fb.const_i64(1);
                counted_loop(&mut fb, nn, &[], |fb, _i, _| {
                    let v = fb.load(Type::I64, cellp);
                    let v2 = fb.add(v, one);
                    fb.store(v2, cellp);
                    vec![]
                });
                fb.load(Type::I64, cellp)
            }
            LoopSpec::Nested { outer, inner } => {
                let on = fb.const_i64(outer);
                let inn = fb.const_i64(inner);
                let z = fb.const_i64(0);
                let phis = counted_loop(&mut fb, on, &[(Type::I64, z)], |fb, _o, ophis| {
                    let acc = counted_loop(fb, inn, &[(Type::I64, ophis[0])], |fb, j, iphis| {
                        let idx = fb.srem(j, inn);
                        let a = fb.gep(base, idx, 8, 0);
                        let v = fb.load(Type::I64, a);
                        vec![fb.add(iphis[0], v)]
                    });
                    vec![acc[0]]
                });
                phis[0]
            }
        };
        checksum = fb.xor(checksum, v);
    }
    fb.ret(Some(checksum));
    module.add_function(fb.finish().expect("generated program is complete"));
    module
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_programs_verify_and_run_deterministically(
        specs in prop::collection::vec(loop_spec(), 1..6)
    ) {
        let module = build_program(&specs);
        prop_assert!(lp_ir::verify_module(&module).is_ok());
        prop_assert!(lp_analysis::verify_ssa(&module).is_ok());
        let run = |m: &Module| {
            let unit = ExecUnit::new(m);
            Exec::new(&unit).run(&[]).unwrap().result
        };
        let r1 = run(&module);
        let r2 = run(&module);
        prop_assert_eq!(r1.ret, r2.ret);
        prop_assert_eq!(r1.cost, r2.cost);
    }

    #[test]
    fn generated_profiles_are_well_formed_and_speedups_bounded(
        specs in prop::collection::vec(loop_spec(), 1..5)
    ) {
        let module = build_program(&specs);
        let analysis = lp_analysis::analyze_module(&module);
        let (profile, run) =
            profile_module(&module, &analysis, &[], lp_interp::MachineConfig::default()).unwrap();
        prop_assert_eq!(profile.total_cost, run.cost);
        // Region tree invariants.
        for region in &profile.regions {
            prop_assert!(region.start <= region.end);
            for &c in &region.children {
                let child = profile.region(c);
                prop_assert!(child.start >= region.start);
                prop_assert!(child.end <= region.end);
            }
            if let RegionKind::Loop(inst) = &region.kind {
                let mut prev = region.start;
                for &s in &inst.iter_starts {
                    prop_assert!(s >= prev || s == prev);
                    prev = s;
                }
                for w in inst.mem_conflict_iters.windows(2) {
                    prop_assert!(w[0] < w[1], "conflict iters sorted");
                }
                for c in &inst.mem_conflict_iters {
                    prop_assert!((*c as usize) < inst.iterations());
                }
            }
        }
        // Bounds for every model/config pair.
        for model in ExecModel::all() {
            for config in Config::all() {
                let r = evaluate(&profile, model, config);
                prop_assert!(r.speedup >= 0.999);
                prop_assert!(r.best_cost <= r.total_cost);
                prop_assert!((0.0..=100.0).contains(&r.coverage));
            }
        }
    }

    #[test]
    fn shared_arc_profile_evaluates_identically_to_fresh_profile(
        specs in prop::collection::vec(loop_spec(), 1..5)
    ) {
        // The sweep engine's profile-once/evaluate-many caching must be
        // invisible: evaluating on a shared `Arc<Profile>` (as parallel
        // sweep workers do) must equal evaluating on a profile taken by
        // an independent fresh run, for every model and configuration.
        let module = build_program(&specs);
        let analysis = lp_analysis::analyze_module(&module);
        let (cached, _) =
            profile_module(&module, &analysis, &[], lp_interp::MachineConfig::default()).unwrap();
        let (fresh, _) =
            profile_module(&module, &analysis, &[], lp_interp::MachineConfig::default()).unwrap();
        let units = [SweepUnit::new("prop", std::sync::Arc::new(cached))];
        let models = ExecModel::all();
        let configs = Config::all();
        let swept = sweep(&units, &models, &configs, Jobs::new(2), EvalOptions::default());
        let mut idx = 0;
        for &model in &models {
            for &config in &configs {
                let reference = evaluate(&fresh, model, config);
                prop_assert_eq!(
                    format!("{reference:?}"),
                    format!("{:?}", swept[idx]),
                    "{} {}",
                    model,
                    config
                );
                idx += 1;
            }
        }
    }

    #[test]
    fn limiter_attribution_conserves_gaps_and_matches_plain_eval(
        specs in prop::collection::vec(loop_spec(), 1..5)
    ) {
        let module = build_program(&specs);
        let analysis = lp_analysis::analyze_module(&module);
        let (profile, _) =
            profile_module(&module, &analysis, &[], lp_interp::MachineConfig::default()).unwrap();
        for model in ExecModel::all() {
            for config in Config::all() {
                // Asking for an explanation must not change the answer.
                let plain = evaluate(&profile, model, config);
                let (explained, attr) = evaluate_explained(&profile, model, config);
                prop_assert_eq!(format!("{plain:?}"), format!("{explained:?}"));
                // Conservation: per loop and for the program, limiter
                // weights sum exactly to the gap above the ideal cost.
                for l in &attr.loops {
                    prop_assert!(l.ideal_cost <= l.best_cost, "{}", l.location());
                    prop_assert!(l.best_cost <= l.serial_adj, "{}", l.location());
                    prop_assert_eq!(l.gap, l.best_cost - l.ideal_cost);
                    let sum: u64 = l.limiters.iter().map(|x| x.weight).sum();
                    prop_assert_eq!(sum, l.gap, "weights must conserve the gap");
                    for lim in &l.limiters {
                        prop_assert!(lim.weight <= lim.savings.max(l.gap));
                    }
                }
                let total: u64 = attr.limiters.iter().map(|x| x.weight).sum();
                prop_assert_eq!(total, attr.total_gap());
            }
        }
    }

    #[test]
    fn pdoall_cost_is_bounded_by_max_and_sum(
        lens in prop::collection::vec(1u64..1000, 1..50),
        conflict_bits in prop::collection::vec(any::<bool>(), 50)
    ) {
        let n = lens.len();
        let conflicts: Vec<u32> = (1..n as u32)
            .filter(|&k| conflict_bits[k as usize % conflict_bits.len()])
            .collect();
        let max = *lens.iter().max().unwrap();
        let sum: u64 = lens.iter().sum();
        if let Some(cost) = pdoall_cost(&lens, &conflicts, false) {
            prop_assert!(cost >= max, "cost {cost} < max {max}");
            prop_assert!(cost <= sum, "cost {cost} > serial {sum}");
        } else {
            // Marked sequential: only if conflicts exceed the 80% rule.
            prop_assert!(conflicts.len() as f64 > 0.8 * n as f64);
        }
        // No conflicts => identical to DOALL.
        prop_assert_eq!(pdoall_cost(&lens, &[], false), doall_cost(&lens, false, false));
    }

    #[test]
    fn helix_cost_matches_formula(
        lens in prop::collection::vec(1u64..1000, 1..50),
        delta in 0u64..500
    ) {
        let max = *lens.iter().max().unwrap();
        let cost = helix_cost(&lens, delta, false).unwrap();
        prop_assert_eq!(cost, max + delta * lens.len() as u64);
        prop_assert!(helix_cost(&lens, delta, true).is_none());
    }

    #[test]
    fn more_conflicts_never_speed_up_pdoall(
        lens in prop::collection::vec(1u64..100, 2..40),
        k in 1usize..10
    ) {
        let n = lens.len() as u32;
        let some: Vec<u32> = (1..n).step_by(k + 1).collect();
        let all: Vec<u32> = (1..n).collect();
        let c_none = pdoall_cost(&lens, &[], false).unwrap();
        if let Some(c_some) = pdoall_cost(&lens, &some, false) {
            prop_assert!(c_some >= c_none);
            if let Some(c_all) = pdoall_cost(&lens, &all, false) {
                prop_assert!(c_all >= c_some);
            }
        }
    }

    #[test]
    fn hybrid_predictor_dominates_components(stream in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut hybrid = HybridPredictor::new();
        let mut last = LastValue::new();
        let mut stride = Stride::new();
        let (mut h, mut l, mut s) = (0u64, 0u64, 0u64);
        for &v in &stream {
            if last.predict() == Some(v) { l += 1; }
            if stride.predict() == Some(v) { s += 1; }
            last.update(v);
            stride.update(v);
            if hybrid.observe(v) { h += 1; }
        }
        prop_assert!(h >= l, "hybrid {h} < last-value {l}");
        prop_assert!(h >= s, "hybrid {h} < stride {s}");
        prop_assert_eq!(hybrid.stats().observed, stream.len() as u64);
    }

    #[test]
    fn scev_induction_classification_matches_runtime_evolution(
        start in -1000i64..1000,
        step in -50i64..50,
        trips in 2i64..40
    ) {
        // Build `for i in 0..trips { x += step }` with x starting at
        // `start`: SCEV must classify x as computable, and the observed
        // phi stream (via a trace) must be exactly the affine sequence.
        let mut module = Module::new("scev");
        let mut fb = FunctionBuilder::new("main", &[], Type::I64);
        let n = fb.const_i64(trips);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let x0 = fb.const_i64(start);
        let stepc = fb.const_i64(step);
        let header = fb.create_block("header");
        let body = fb.create_block("body");
        let exit = fb.create_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64);
        let x = fb.phi(Type::I64);
        let c = fb.icmp(lp_ir::IcmpPred::Slt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(i, one);
        let x2 = fb.add(x, stepc);
        fb.add_phi_incoming(i, lp_ir::BlockId::ENTRY, zero);
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(x, lp_ir::BlockId::ENTRY, x0);
        fb.add_phi_incoming(x, body, x2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(x));
        module.add_function(fb.finish().expect("complete"));

        // Compile-time claim: both header phis are computable.
        let analysis = lp_analysis::analyze_module(&module);
        let fa = &analysis.functions[0];
        prop_assert_eq!(fa.loops.len(), 1);
        for (_, class) in &fa.lcds[0].phis {
            prop_assert!(class.is_computable(), "{class:?}");
        }

        // Runtime check: the traced phi stream equals the closed form.
        let mut sink = lp_interp::TraceSink::new(4096);
        let unit = ExecUnit::new(&module);
        let r = Exec::new(&unit).sink(&mut sink).run(&[]).unwrap().result;
        prop_assert_eq!(
            r.ret,
            lp_interp::Value::I(start.wrapping_add(step.wrapping_mul(trips)))
        );
        let xs: Vec<i64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                lp_interp::TraceEvent::Phi(_, phi, lp_interp::Value::I(v), _) if *phi == x => {
                    Some(*v)
                }
                _ => None,
            })
            .collect();
        // Iteration k (0-based) sees x = start + step*k; plus the final
        // header entry that exits the loop.
        prop_assert_eq!(xs.len() as i64, trips + 1);
        for (k, &v) in xs.iter().enumerate() {
            prop_assert_eq!(v, start.wrapping_add(step.wrapping_mul(k as i64)));
        }
    }

    #[test]
    fn memory_reads_what_it_wrote(
        writes in prop::collection::vec((0u64..512, any::<u64>()), 1..100)
    ) {
        let mut mem = lp_interp::Memory::new();
        let mut shadow = std::collections::HashMap::new();
        for (slot, value) in &writes {
            let addr = lp_interp::GLOBAL_BASE + slot * 8;
            mem.write(addr, *value).unwrap();
            shadow.insert(addr, *value);
        }
        for (addr, value) in shadow {
            prop_assert_eq!(mem.read(addr).unwrap(), value);
        }
    }
}
