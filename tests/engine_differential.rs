//! Differential validation of the bytecode engine against the tree-walk
//! oracle: for every suite kernel — and for randomly generated loop
//! programs — `--engine bc` must be *observationally identical* to
//! `--engine tree`. Identity is checked at the strongest level we have:
//! the profile store codec (`encode_entry`) serializes the complete
//! profile (region tree, loop instances, conflict iterations, predictor
//! stats) plus the run result, so byte-equal encodings mean the two
//! engines emitted the same events in the same order with the same
//! stamps. The replay pipeline is exercised end-to-end under `bc` at
//! 1/2/8 workers and compared structurally to the tree run (wall-clock
//! fields aside).

use lp_analysis::{analyze_module, LoopId, ModuleAnalysis};
use lp_interp::{Engine, EventSink, Exec, ExecUnit, MachineConfig, MemStats, Value};
use lp_ir::builder::FunctionBuilder;
use lp_ir::{BlockId, Builtin, FuncId, Global, IcmpPred, Module, Type, ValueId};
use lp_runtime::{
    encode_entry, profile_module, profile_module_witnessed, replay_module_with, Jobs, Profiler,
};
use lp_suite::kernels::counted_loop;
use lp_suite::Scale;
use proptest::prelude::*;

/// Profiles `module` under `engine` and returns the full store-codec
/// encoding of the resulting (profile, run) pair.
fn encoded_profile(module: &Module, engine: Engine) -> Vec<u8> {
    let analysis = analyze_module(module);
    let config = MachineConfig {
        engine,
        ..MachineConfig::default()
    };
    let (profile, run) = profile_module(module, &analysis, &[], config).unwrap_or_else(|e| {
        panic!(
            "{}: profiling trap under {}: {e}",
            module.name,
            engine.name()
        )
    });
    encode_entry(&profile, &run)
}

/// Every suite kernel's profile must encode byte-identically under both
/// engines — same events, same order, same stamps, same run result.
#[test]
fn suite_profiles_are_byte_identical_across_engines() {
    for b in lp_suite::registry() {
        let module = b.build(Scale::Test);
        assert_eq!(
            encoded_profile(&module, Engine::Tree),
            encoded_profile(&module, Engine::Bc),
            "{}: profile encoding diverges between tree and bc",
            b.name
        );
    }
}

/// The replay pipeline driven by the bytecode engine must reach the
/// same verdicts as the tree walk at every worker count: identical
/// certified/rejected loop sets, identical iteration counts and
/// predictions, and no divergence on either side.
#[test]
fn suite_replay_verdicts_match_across_engines_at_1_2_8_workers() {
    for b in lp_suite::registry() {
        let module = b.build(Scale::Test);
        for jobs in [1usize, 2, 8] {
            let tree = replay_module_with(&module, &[], Jobs::new(jobs), Engine::Tree)
                .unwrap_or_else(|e| panic!("{}: tree replay trap: {e}", b.name));
            let bc = replay_module_with(&module, &[], Jobs::new(jobs), Engine::Bc)
                .unwrap_or_else(|e| panic!("{}: bc replay trap: {e}", b.name));
            assert!(
                tree.divergence.is_none() && bc.divergence.is_none(),
                "{} diverged at jobs={jobs}: tree={:?} bc={:?}",
                b.name,
                tree.divergence,
                bc.divergence
            );
            let shape = |r: &lp_runtime::BenchReplay| {
                (
                    r.loops
                        .iter()
                        .map(|l| {
                            (
                                l.func_name.clone(),
                                l.header,
                                l.instances,
                                l.iterations,
                                l.predicted_speedup.to_bits(),
                            )
                        })
                        .collect::<Vec<_>>(),
                    format!("{:?}", r.rejected),
                )
            };
            assert_eq!(
                shape(&tree),
                shape(&bc),
                "{}: replay verdicts differ between engines at jobs={jobs}",
                b.name
            );
        }
    }
}

/// One randomly chosen loop in a generated program (a condensed version
/// of the `props.rs` generator: DOALL fill, reduction, carried LCG, and
/// a shared-cell RMW — the shapes that stress phi runs, fused
/// gep+loads, and the icmp+br loop latch in the bytecode).
#[derive(Debug, Clone)]
enum LoopSpec {
    Fill { n: i64, mul: i64 },
    Sum { n: i64 },
    Lcg { n: i64, seed: i64 },
    Cell { n: i64 },
}

fn loop_spec() -> impl Strategy<Value = LoopSpec> {
    prop_oneof![
        (2i64..60, 1i64..100).prop_map(|(n, mul)| LoopSpec::Fill { n, mul }),
        (2i64..60).prop_map(|n| LoopSpec::Sum { n }),
        (2i64..40, 1i64..1_000_000).prop_map(|(n, seed)| LoopSpec::Lcg { n, seed }),
        (2i64..40).prop_map(|n| LoopSpec::Cell { n }),
    ]
}

fn build_program(specs: &[LoopSpec]) -> Module {
    let mut module = Module::new("prop");
    let array = module.add_global(Global::zeroed("a", 256));
    let cell = module.add_global(Global::zeroed("c", 2));
    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let base = fb.global_addr(array);
    let cellp = fb.global_addr(cell);
    let mut checksum = fb.const_i64(0);
    for spec in specs {
        let v = match *spec {
            LoopSpec::Fill { n, mul } => {
                let nn = fb.const_i64(n.min(200));
                let m = fb.const_i64(mul);
                counted_loop(&mut fb, nn, &[], |fb, i, _| {
                    let t = fb.mul(i, m);
                    let idx = fb.srem(i, nn);
                    let a = fb.gep(base, idx, 8, 0);
                    fb.store(t, a);
                    vec![]
                });
                fb.const_i64(n)
            }
            LoopSpec::Sum { n } => {
                let nn = fb.const_i64(n.min(200));
                let z = fb.const_i64(0);
                let phis = counted_loop(&mut fb, nn, &[(Type::I64, z)], |fb, i, phis| {
                    let idx = fb.srem(i, nn);
                    let a = fb.gep(base, idx, 8, 0);
                    let v = fb.load(Type::I64, a);
                    vec![fb.add(phis[0], v)]
                });
                phis[0]
            }
            LoopSpec::Lcg { n, seed } => {
                let nn = fb.const_i64(n);
                let s = fb.const_i64(seed);
                let phis = counted_loop(&mut fb, nn, &[(Type::I64, s)], |fb, _i, phis| {
                    let k = fb.const_i64(6364136223846793005u64 as i64);
                    let c = fb.const_i64(1442695040888963407u64 as i64);
                    let t = fb.mul(phis[0], k);
                    vec![fb.add(t, c)]
                });
                phis[0]
            }
            LoopSpec::Cell { n } => {
                let nn = fb.const_i64(n);
                let one = fb.const_i64(1);
                counted_loop(&mut fb, nn, &[], |fb, _i, _| {
                    let v = fb.load(Type::I64, cellp);
                    let v2 = fb.add(v, one);
                    fb.store(v2, cellp);
                    vec![]
                });
                fb.load(Type::I64, cellp)
            }
        };
        checksum = fb.xor(checksum, v);
    }
    fb.ret(Some(checksum));
    module.add_function(fb.finish().expect("generated program is complete"));
    module
}

/// A trapping kernel: iteration `k` of the counted loop divides by
/// `i - k`, so both engines must fault mid-loop with the same trap
/// after the same number of completed iterations.
fn div_trap_kernel(n: i64, k: i64) -> Module {
    let mut m = Module::new("divtrap");
    let g = m.add_global(Global::zeroed("a", 64));
    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let n = fb.const_i64(n);
    let kk = fb.const_i64(k);
    let zero = fb.const_i64(0);
    let one = fb.const_i64(1);
    let base = fb.global_addr(g);
    let header = fb.create_block("header");
    let body = fb.create_block("body");
    let exit = fb.create_block("exit");
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Type::I64);
    let c = fb.icmp(IcmpPred::Slt, i, n);
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let d = fb.sub(i, kk);
    let q = fb.sdiv(i, d);
    let addr = fb.gep(base, i, 8, 0);
    fb.store(q, addr);
    let i2 = fb.add(i, one);
    fb.add_phi_incoming(i, BlockId::ENTRY, zero);
    fb.add_phi_incoming(i, body, i2);
    fb.br(header);
    fb.switch_to(exit);
    fb.ret(Some(zero));
    m.add_function(fb.finish().unwrap());
    m
}

/// Every natural loop in the module, in deterministic (func, loop)
/// order — the target set that arms an independence witness on each.
fn all_loops(module: &Module, analysis: &ModuleAnalysis) -> Vec<(FuncId, LoopId)> {
    let mut targets = Vec::new();
    for (fid, _) in module.iter_functions() {
        for (lid, _) in analysis.function(fid).loops.iter() {
            targets.push((fid, lid));
        }
    }
    targets
}

/// Forwards every per-instruction callback to the wrapped profiler while
/// keeping the default [`Fidelity::PerInstruction`]. Passing
/// `&mut Profiler` directly would re-advertise `Fidelity::Block` (the
/// `&mut S` blanket impl forwards `fidelity`), so this newtype is what
/// forces the bytecode engine down the per-event delivery path that the
/// native `block_batch` handler must reproduce byte-for-byte.
struct PerInstructionView<'p, 'a>(&'p mut Profiler<'a>);

impl EventSink for PerInstructionView<'_, '_> {
    fn block_entered(&mut self, func: FuncId, block: BlockId, cost: u64, now: u64) {
        self.0.block_entered(func, block, cost, now);
    }
    fn phi_resolved(&mut self, func: FuncId, block: BlockId, phi: ValueId, value: Value, now: u64) {
        self.0.phi_resolved(func, block, phi, value, now);
    }
    fn load(&mut self, addr: u64, now: u64) {
        self.0.load(addr, now);
    }
    fn store(&mut self, addr: u64, now: u64) {
        self.0.store(addr, now);
    }
    fn func_entered(&mut self, func: FuncId, frame_base: u64, now: u64) {
        self.0.func_entered(func, frame_base, now);
    }
    fn func_exited(&mut self, func: FuncId, now: u64) {
        self.0.func_exited(func, now);
    }
    fn builtin_called(&mut self, caller: FuncId, builtin: Builtin, now: u64) {
        self.0.builtin_called(caller, builtin, now);
    }
    fn value_defined(&mut self, func: FuncId, value: ValueId, val: Value, now: u64) {
        self.0.value_defined(func, value, val, now);
    }
    fn mem_stats(&mut self, stats: MemStats) {
        self.0.mem_stats(stats);
    }
}

/// Profiles `module` on the bytecode engine with witnesses armed on
/// every loop, delivering events either as native block batches
/// (`batched`) or through the per-instruction path, and returns the
/// full store-codec encoding plus the witness report's Debug rendering
/// (`WitnessReport` has no `PartialEq`; its Debug form covers every
/// field of every witness, violations included).
fn profile_bc(module: &Module, batched: bool) -> (Vec<u8>, String) {
    let analysis = analyze_module(module);
    let targets = all_loops(module, &analysis);
    let mut profiler = Profiler::new(module, &analysis);
    profiler.enable_witness(&targets, Vec::new());
    let config = MachineConfig {
        watched_values: profiler.watched_values(),
        ..MachineConfig::default()
    };
    let unit = ExecUnit::with_engine(module, Engine::Bc);
    let exec = Exec::new(&unit).config(config);
    let result = if batched {
        exec.sink(&mut profiler).run(&[])
    } else {
        exec.sink(PerInstructionView(&mut profiler)).run(&[])
    }
    .unwrap_or_else(|e| panic!("{}: profiling trap (batched={batched}): {e}", module.name))
    .result;
    let (profile, report) = profiler.finish_with_witness();
    (encode_entry(&profile, &result), format!("{report:?}"))
}

/// Witness-armed profiling run under `engine`: store-codec bytes plus
/// the witness report's Debug rendering.
fn witnessed_profile(module: &Module, engine: Engine) -> (Vec<u8>, String) {
    let analysis = analyze_module(module);
    let targets = all_loops(module, &analysis);
    let config = MachineConfig {
        engine,
        ..MachineConfig::default()
    };
    let (profile, run, report) = profile_module_witnessed(module, &analysis, &[], config, &targets)
        .unwrap_or_else(|e| {
            panic!(
                "{}: witnessed profiling trap under {}: {e}",
                module.name,
                engine.name()
            )
        });
    (encode_entry(&profile, &run), format!("{report:?}"))
}

/// The native block-batch `Profiler` entry point must be byte-identical
/// to the per-instruction shim on every suite kernel: same profile
/// encoding, same independence witnesses.
#[test]
fn suite_native_batching_matches_per_instruction_shim() {
    for b in lp_suite::registry() {
        let module = b.build(Scale::Test);
        let (batch_bytes, batch_report) = profile_bc(&module, true);
        let (shim_bytes, shim_report) = profile_bc(&module, false);
        assert_eq!(
            batch_bytes, shim_bytes,
            "{}: profile encoding diverges between native batching and the shim",
            b.name
        );
        assert_eq!(
            batch_report, shim_report,
            "{}: witness report diverges between native batching and the shim",
            b.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated loop programs profile byte-identically whether the
    /// `Profiler` consumes native block batches or the per-instruction
    /// event stream, and their independence witnesses agree too.
    #[test]
    fn generated_kernels_native_batching_matches_shim(
        specs in prop::collection::vec(loop_spec(), 1..6)
    ) {
        let module = build_program(&specs);
        let (batch_bytes, batch_report) = profile_bc(&module, true);
        let (shim_bytes, shim_report) = profile_bc(&module, false);
        prop_assert_eq!(
            batch_bytes, shim_bytes,
            "profile encoding diverges from the shim for {:?}", specs
        );
        prop_assert_eq!(
            batch_report, shim_report,
            "witness report diverges from the shim for {:?}", specs
        );
    }

    /// Witness-armed profiling is engine-invariant on generated
    /// kernels: identical profile encodings and identical witness
    /// reports under tree and bc.
    #[test]
    fn generated_kernels_witness_reports_are_engine_invariant(
        specs in prop::collection::vec(loop_spec(), 1..6)
    ) {
        let module = build_program(&specs);
        let tree = witnessed_profile(&module, Engine::Tree);
        let bc = witnessed_profile(&module, Engine::Bc);
        prop_assert_eq!(tree.0, bc.0, "witnessed profile encoding diverges for {:?}", specs);
        prop_assert_eq!(tree.1, bc.1, "witness report diverges for {:?}", specs);
    }

    /// Generated loop programs profile byte-identically under both
    /// engines, and their plain (unprofiled) runs agree on return value
    /// and dynamic cost.
    #[test]
    fn generated_kernels_are_engine_invariant(
        specs in prop::collection::vec(loop_spec(), 1..6)
    ) {
        let module = build_program(&specs);
        prop_assert!(lp_ir::verify_module(&module).is_ok());
        let run = |engine: Engine| {
            let unit = ExecUnit::with_engine(&module, engine);
            Exec::new(&unit).run(&[]).unwrap().result
        };
        let tree = run(Engine::Tree);
        let bc = run(Engine::Bc);
        prop_assert_eq!(tree.ret, bc.ret);
        prop_assert_eq!(tree.cost, bc.cost);
        prop_assert_eq!(
            encoded_profile(&module, Engine::Tree),
            encoded_profile(&module, Engine::Bc),
            "profile encoding diverges for {:?}", specs
        );
    }

    /// Fuel fidelity: every budget from starving to ample produces the
    /// same outcome on both engines — the same `FuelExhausted` when the
    /// budget runs out (the silent loop's block-granular precharge plus
    /// `Exec::run`'s exact re-run must reproduce per-instruction
    /// exhaustion), the same trap when the trap fires first, and the
    /// same result and cost when the budget suffices.
    #[test]
    fn fuel_budgets_exhaust_identically(n in 5i64..30, budget in 1u64..400) {
        let module = div_trap_kernel(n, n / 2);
        let run = |engine: Engine| {
            let unit = ExecUnit::with_engine(&module, engine);
            let config = MachineConfig { max_cost: budget, ..MachineConfig::default() };
            Exec::new(&unit).config(config).run(&[])
        };
        match (run(Engine::Tree), run(Engine::Bc)) {
            (Ok(t), Ok(b)) => {
                prop_assert_eq!(t.result.ret, b.result.ret);
                prop_assert_eq!(t.result.cost, b.result.cost);
            }
            (Err(t), Err(b)) => prop_assert_eq!(t.to_string(), b.to_string()),
            (t, b) => prop_assert!(false, "outcomes diverge at budget {}: tree={:?} bc={:?}",
                budget, t.map(|o| o.result.ret), b.map(|o| o.result.ret)),
        }
    }

    /// Error fidelity: a mid-loop division by zero traps identically —
    /// same message, same trap point — under both engines.
    #[test]
    fn trapping_kernels_fail_identically(n in 5i64..40, frac in 0i64..100) {
        let module = div_trap_kernel(n, frac * (n - 1) / 100);
        let run = |engine: Engine| {
            let unit = ExecUnit::with_engine(&module, engine);
            Exec::new(&unit).run(&[])
        };
        match (run(Engine::Tree), run(Engine::Bc)) {
            (Err(t), Err(b)) => prop_assert_eq!(t.to_string(), b.to_string()),
            (t, b) => prop_assert!(false, "expected traps, got tree={:?} bc={:?}",
                t.map(|o| o.result.ret), b.map(|o| o.result.ret)),
        }
    }
}
