//! Whole-pipeline integration tests: every registered benchmark goes
//! through verify → analyze → profile → evaluate, and the results must
//! satisfy the limit-study invariants for every model and configuration.

use loopapalooza::prelude::*;
use loopapalooza::Study;
use lp_runtime::{DepMode, FnMode, ReducMode};

fn studies(scale: Scale) -> Vec<(String, Study)> {
    lp_suite::registry()
        .into_iter()
        .map(|b| {
            let module = b.build(scale);
            let study =
                Study::of(&module).unwrap_or_else(|e| panic!("{} failed to profile: {e}", b.name));
            (b.name.to_string(), study)
        })
        .collect()
}

#[test]
fn all_benchmarks_profile_and_evaluate() {
    for (name, study) in studies(Scale::Test) {
        assert!(
            study.run_result().cost > 1_000,
            "{name}: suspiciously small run ({})",
            study.run_result().cost
        );
        for report in study.table2_rows() {
            assert!(
                report.speedup >= 0.999,
                "{name} {} {}: speedup {} < 1",
                report.model,
                report.config,
                report.speedup
            );
            assert!(
                report.best_cost <= report.total_cost,
                "{name}: best exceeds serial"
            );
            assert!(
                (0.0..=100.0).contains(&report.coverage),
                "{name}: coverage {} out of range",
                report.coverage
            );
        }
    }
}

#[test]
fn dep_relaxation_is_monotonic_under_pdoall() {
    for (name, study) in studies(Scale::Test) {
        for reduc in [ReducMode::Reduc0, ReducMode::Reduc1] {
            let sp = |dep| {
                study
                    .evaluate(
                        ExecModel::PartialDoall,
                        Config::new(reduc, dep, FnMode::Fn2),
                    )
                    .speedup
            };
            let s0 = sp(DepMode::Dep0);
            let s2 = sp(DepMode::Dep2);
            let s3 = sp(DepMode::Dep3);
            assert!(s0 <= s2 * 1.0001, "{name}: dep0 {s0} > dep2 {s2}");
            assert!(s2 <= s3 * 1.0001, "{name}: dep2 {s2} > dep3 {s3}");
        }
    }
}

#[test]
fn fn_relaxation_is_monotonic() {
    for (name, study) in studies(Scale::Test) {
        let sp = |fnm| {
            study
                .evaluate(
                    ExecModel::PartialDoall,
                    Config::new(ReducMode::Reduc1, DepMode::Dep3, fnm),
                )
                .speedup
        };
        let f0 = sp(FnMode::Fn0);
        let f1 = sp(FnMode::Fn1);
        let f2 = sp(FnMode::Fn2);
        let f3 = sp(FnMode::Fn3);
        assert!(f0 <= f1 * 1.0001, "{name}: fn0 {f0} > fn1 {f1}");
        assert!(f1 <= f2 * 1.0001, "{name}: fn1 {f1} > fn2 {f2}");
        assert!(f2 <= f3 * 1.0001, "{name}: fn2 {f2} > fn3 {f3}");
    }
}

#[test]
fn reduc1_never_hurts() {
    for (name, study) in studies(Scale::Test) {
        for model in ExecModel::all() {
            for dep in [DepMode::Dep0, DepMode::Dep2] {
                let r0 = study
                    .evaluate(model, Config::new(ReducMode::Reduc0, dep, FnMode::Fn2))
                    .speedup;
                let r1 = study
                    .evaluate(model, Config::new(ReducMode::Reduc1, dep, FnMode::Fn2))
                    .speedup;
                assert!(
                    r0 <= r1 * 1.0001,
                    "{name} {model} {dep:?}: reduc0 {r0} > reduc1 {r1}"
                );
            }
        }
    }
}

#[test]
fn pdoall_never_loses_to_doall() {
    // PDOALL strictly generalizes DOALL (a conflict restarts instead of
    // abandoning), so at equal flags it can only match or win.
    for (name, study) in studies(Scale::Test) {
        for config in [
            Config::new(ReducMode::Reduc0, DepMode::Dep0, FnMode::Fn0),
            Config::new(ReducMode::Reduc1, DepMode::Dep0, FnMode::Fn0),
        ] {
            let doall = study.evaluate(ExecModel::Doall, config).speedup;
            let pdoall = study.evaluate(ExecModel::PartialDoall, config).speedup;
            assert!(
                doall <= pdoall * 1.0001,
                "{name} {config}: DOALL {doall} > PDOALL {pdoall}"
            );
        }
    }
}

#[test]
fn determinism_of_the_whole_pipeline() {
    let bench = lp_suite::find("186.crafty").unwrap();
    let module = bench.build(Scale::Test);
    let (m, c) = lp_runtime::best_helix();
    let a = Study::of(&module).unwrap().evaluate(m, c).speedup;
    let b = Study::of(&module).unwrap().evaluate(m, c).speedup;
    assert_eq!(a, b, "two identical studies must agree exactly");
}

#[test]
fn census_over_the_full_registry() {
    let studies = studies(Scale::Test);
    let census = lp_runtime::Census::over(studies.iter().map(|(_, s)| s.profile()));
    assert_eq!(census.programs, studies.len() as u64);
    // The suite exercises every Table-I category.
    assert!(census.computable > 0, "no computable LCDs seen");
    assert!(census.reductions > 0, "no reductions seen");
    assert!(census.predictable > 0, "no predictable LCDs seen");
    assert!(census.unpredictable > 0, "no unpredictable LCDs seen");
    assert!(census.frequent_mem_loops > 0, "no frequent memory LCDs");
    assert!(census.infrequent_mem_loops > 0, "no infrequent memory LCDs");
    assert!(census.loops_with_calls > 0, "no structural hazards");
    assert!(census.loops_with_unsafe_calls > 0, "no unsafe calls");
}

#[test]
fn amdahl_consistency_between_speedup_and_coverage() {
    // Coverage is the fraction of dynamic instructions inside parallel
    // loops; everything else runs serially. With infinite cores the
    // speedup can therefore never exceed the Amdahl bound 1/(1 - c):
    // best_cost >= total_cost - covered.
    for (name, study) in studies(Scale::Test) {
        for report in study.table2_rows() {
            let c = report.coverage / 100.0;
            let bound = if c >= 1.0 {
                f64::INFINITY
            } else {
                1.0 / (1.0 - c)
            };
            assert!(
                report.speedup <= bound * 1.0001,
                "{name} {} {}: speedup {:.3} exceeds Amdahl bound {:.3} at coverage {:.1}%",
                report.model,
                report.config,
                report.speedup,
                bound,
                report.coverage
            );
        }
    }
}
