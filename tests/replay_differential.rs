//! Differential validation of the parallel DOALL replayer: every suite
//! kernel with at least one certified loop must replay byte-identically
//! to its serial run at 1, 2, and 8 workers, and a deliberately
//! misclassified kernel (statically certifiable, but with a hidden
//! cross-iteration store) must be rejected by the independence witness
//! *before* any parallel execution.
//!
//! The property tests at the bottom probe the same soundness boundary
//! from the generator side: known-independent kernels always certify and
//! replay cleanly; injecting a loop-carried store flips the verdict to
//! witness-rejected.

use lp_analysis::{analyze_module, certify_module};
use lp_ir::builder::FunctionBuilder;
use lp_ir::{BlockId, Global, IcmpPred, Module, Type};
use lp_runtime::{replay_module, ConflictKind, Jobs, RejectReason, WitnessViolation};
use lp_suite::Scale;
use proptest::prelude::*;

/// Replaying any suite kernel must reproduce the serial execution
/// exactly — memory image, output, return value, and dynamic cost — for
/// every worker count, and the witness gate must account for every
/// statically certified loop (replayed + rejected = certified).
#[test]
fn suite_kernels_replay_identically_at_1_2_8_workers() {
    let mut replayed_any = false;
    for b in lp_suite::registry() {
        let module = b.build(Scale::Test);
        let analysis = analyze_module(&module);
        let certified = certify_module(&module, &analysis).len();
        for jobs in [1usize, 2, 8] {
            let r = replay_module(&module, &[], Jobs::new(jobs))
                .unwrap_or_else(|e| panic!("{}: replay trap: {e}", b.name));
            assert!(
                r.divergence.is_none(),
                "{} diverged at jobs={jobs}: {}",
                b.name,
                r.divergence.unwrap()
            );
            assert_eq!(
                r.loops.len() + r.rejected.len(),
                certified,
                "{}: witness gate lost a certified loop",
                b.name
            );
            replayed_any |= !r.loops.is_empty();
        }
    }
    assert!(replayed_any, "no suite kernel replayed any loop");
}

/// A counted loop storing `i * mul + off` to `a[i]` and accumulating the
/// stored values in a reduction; when `carried` is set, every iteration
/// additionally stores to the fixed slot `a[carried]` — a hidden
/// cross-iteration write-write conflict the static certifier cannot see.
fn fill_kernel(n: i64, mul: i64, off: i64, carried: Option<i64>) -> Module {
    let mut m = Module::new("gen_fill");
    let g = m.add_global(Global::zeroed("a", 64));
    let mut fb = FunctionBuilder::new("main", &[], Type::I64);
    let n = fb.const_i64(n);
    let zero = fb.const_i64(0);
    let one = fb.const_i64(1);
    let mul = fb.const_i64(mul);
    let off = fb.const_i64(off);
    let base = fb.global_addr(g);
    let header = fb.create_block("header");
    let body = fb.create_block("body");
    let exit = fb.create_block("exit");
    fb.br(header);
    fb.switch_to(header);
    let i = fb.phi(Type::I64);
    let s = fb.phi(Type::I64);
    let c = fb.icmp(IcmpPred::Slt, i, n);
    fb.cond_br(c, body, exit);
    fb.switch_to(body);
    let scaled = fb.mul(i, mul);
    let v = fb.add(scaled, off);
    let addr = fb.gep(base, i, 8, 0);
    fb.store(v, addr);
    if let Some(slot) = carried {
        let slot = fb.const_i64(slot);
        let hidden = fb.gep(base, slot, 8, 0);
        fb.store(i, hidden);
    }
    let s2 = fb.add(s, v);
    let i2 = fb.add(i, one);
    fb.add_phi_incoming(i, BlockId::ENTRY, zero);
    fb.add_phi_incoming(i, body, i2);
    fb.add_phi_incoming(s, BlockId::ENTRY, zero);
    fb.add_phi_incoming(s, body, s2);
    fb.br(header);
    fb.switch_to(exit);
    fb.ret(Some(s));
    m.add_function(fb.finish().unwrap());
    m
}

/// The misclassification differential: the seeded kernel certifies
/// statically (the certifier only sees shape), but the witness observes
/// the repeated store to `a[3]` and keeps the loop off the threads —
/// it is rejected, not executed, so there is nothing to diverge.
#[test]
fn misclassified_kernel_is_rejected_before_execution() {
    let m = fill_kernel(32, 5, 7, Some(3));
    let analysis = analyze_module(&m);
    assert_eq!(
        certify_module(&m, &analysis).len(),
        1,
        "the seeded kernel must look DOALL to the static certifier"
    );
    for jobs in [2usize, 8] {
        let r = replay_module(&m, &[], Jobs::new(jobs)).unwrap();
        assert!(r.loops.is_empty(), "false DOALL must not replay");
        assert_eq!(r.rejected.len(), 1);
        assert!(
            matches!(
                &r.rejected[0].reason,
                RejectReason::Violation(WitnessViolation {
                    kind: ConflictKind::WriteWrite,
                    ..
                })
            ),
            "want a write-write witness violation, got {:?}",
            r.rejected[0].reason
        );
        assert!(r.divergence.is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Witness completeness: a genuinely independent generated kernel is
    /// never rejected, always replays, and never diverges.
    #[test]
    fn independent_kernels_certify_and_replay(
        n in 2i64..60,
        mul in 1i64..100,
        off in 0i64..1000,
        jobs in 1usize..8,
    ) {
        let m = fill_kernel(n, mul, off, None);
        let r = replay_module(&m, &[], Jobs::new(jobs)).unwrap();
        prop_assert_eq!(r.loops.len(), 1, "independent loop must certify and replay");
        prop_assert!(r.rejected.is_empty(), "witness must not reject: {:?}", r.rejected);
        prop_assert!(r.divergence.is_none(), "diverged: {:?}", r.divergence);
        prop_assert_eq!(r.loops[0].iterations, n as u64);
    }

    /// Witness soundness: injecting one loop-carried store into the same
    /// kernel flips the verdict to rejected — before any execution.
    #[test]
    fn carried_store_flips_to_rejected(
        n in 2i64..60,
        mul in 1i64..100,
        off in 0i64..1000,
        slot in 0i64..8,
        jobs in 1usize..8,
    ) {
        let m = fill_kernel(n, mul, off, Some(slot));
        let r = replay_module(&m, &[], Jobs::new(jobs)).unwrap();
        prop_assert!(r.loops.is_empty(), "false DOALL replayed: {:?}", r.loops);
        prop_assert_eq!(r.rejected.len(), 1);
        prop_assert!(
            matches!(&r.rejected[0].reason, RejectReason::Violation(_)),
            "want a witness violation, got {:?}",
            r.rejected[0].reason
        );
        prop_assert!(r.divergence.is_none());
    }
}
