//! Library-level determinism differential for the parallel sweep
//! engine: the full `(benchmark × model × config)` lattice evaluated
//! with 1, 2, and 8 workers must produce **byte-identical** CSV and
//! JSON exports, and every report must equal a freshly-evaluated serial
//! reference. This is the contract the binaries inherit — if it holds
//! here, `--jobs` can never change a figure.

use loopapalooza::Study;
use lp_runtime::export::reports_to_csv;
use lp_runtime::{
    evaluate, sweep, Config, EvalOptions, ExecModel, Export, Jobs, SweepExport, SweepUnit,
};
use lp_suite::Scale;

fn units() -> Vec<SweepUnit> {
    ["eembc.matrix01", "eembc.rspeed01", "181.mcf"]
        .iter()
        .map(|name| {
            let bench = lp_suite::find(name).expect("registered benchmark");
            let study = Study::of(&bench.build(Scale::Test)).expect("benchmark runs");
            study.sweep_unit()
        })
        .collect()
}

#[test]
fn sweep_exports_are_byte_identical_across_job_counts() {
    let units = units();
    let models = ExecModel::all();
    let configs = Config::all();
    let serial = sweep(
        &units,
        &models,
        &configs,
        Jobs::serial(),
        EvalOptions::default(),
    );
    assert_eq!(serial.len(), units.len() * models.len() * configs.len());
    let serial_csv = reports_to_csv(&serial);
    let serial_json = SweepExport(&serial).to_json();
    lp_obs::validate_json(&serial_json).expect("sweep JSON well-formed");
    for jobs in [2, 8] {
        let parallel = sweep(
            &units,
            &models,
            &configs,
            Jobs::new(jobs),
            EvalOptions::default(),
        );
        assert_eq!(
            serial_csv,
            reports_to_csv(&parallel),
            "CSV diverged at jobs={jobs}"
        );
        assert_eq!(
            serial_json,
            SweepExport(&parallel).to_json(),
            "JSON diverged at jobs={jobs}"
        );
    }
}

#[test]
fn shared_profile_evaluations_match_fresh_serial_references() {
    let units = units();
    let models = ExecModel::all();
    let configs = Config::all();
    let swept = sweep(
        &units,
        &models,
        &configs,
        Jobs::new(4),
        EvalOptions::default(),
    );
    let mut idx = 0;
    for unit in &units {
        for &model in &models {
            for &config in &configs {
                let reference = evaluate(&unit.profile, model, config);
                assert_eq!(
                    format!("{reference:?}"),
                    format!("{:?}", swept[idx]),
                    "{} {model} {config}",
                    unit.name
                );
                idx += 1;
            }
        }
    }
}
