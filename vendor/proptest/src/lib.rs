//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! implements the slice of proptest the workspace's property tests use:
//! [`Strategy`] over integer ranges, tuples, `prop_map`, `any`,
//! `prop::collection::vec`, `prop_oneof!`, and the [`proptest!`] test
//! macro with `ProptestConfig::with_cases`. Values are sampled from a
//! deterministic SplitMix64 stream seeded by the test name, so failures
//! reproduce exactly. There is **no shrinking**: a failing case panics
//! with the generated inputs via the normal assertion message.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map {
                source: self,
                func: f,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A type-erased strategy (a boxed sampling closure).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over `alternatives` (must be non-empty).
        ///
        /// # Panics
        /// Panics when `alternatives` is empty.
        #[must_use]
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) func: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.func)(self.source.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    //! `any::<T>()` support for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Primitives with a canonical "any value" distribution.
    pub trait Arbitrary {
        /// Samples an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let n = self.size.min
                + if span == 0 {
                    0
                } else {
                    (rng.next_u64() % span) as usize
                };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! The per-test sampling loop.

    /// Run-count configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A reproducible generator for the named test.
        #[must_use]
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next raw 64-bit sample.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion (panics on failure — no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Namespaced re-exports matching proptest's `prop::` paths.
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds_and_vary() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        let strat = 10i64..20;
        let vals: Vec<i64> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(vals.iter().all(|v| (10..20).contains(v)));
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let strat = prop_oneof![
            (0i64..1).prop_map(|_| "a"),
            (0i64..1).prop_map(|_| "b"),
            (0i64..1).prop_map(|_| "c"),
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = crate::test_runner::TestRng::for_test("vec");
        let strat = prop::collection::vec(any::<bool>(), 1..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
        let fixed = prop::collection::vec(any::<u64>(), 50);
        assert_eq!(fixed.generate(&mut rng).len(), 50);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_binds(x in 1i64..100, flags in prop::collection::vec(any::<bool>(), 3)) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(flags.len(), 3);
        }
    }
}
