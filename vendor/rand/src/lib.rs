//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand` API its tests actually use:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`Rng::gen`] for primitive types. The generator is SplitMix64 —
//! deterministic, well-distributed, and more than good enough for
//! "feed the predictor unpredictable values" style tests.

/// Types that can be produced from a uniformly random `u64`.
pub trait FromRandom {
    /// Builds a value from one raw 64-bit sample.
    fn from_random(bits: u64) -> Self;
}

impl FromRandom for u64 {
    fn from_random(bits: u64) -> u64 {
        bits
    }
}

impl FromRandom for i64 {
    fn from_random(bits: u64) -> i64 {
        bits as i64
    }
}

impl FromRandom for u32 {
    fn from_random(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl FromRandom for i32 {
    fn from_random(bits: u64) -> i32 {
        (bits >> 32) as i32
    }
}

impl FromRandom for usize {
    fn from_random(bits: u64) -> usize {
        bits as usize
    }
}

impl FromRandom for bool {
    fn from_random(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

impl FromRandom for f64 {
    fn from_random(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of randomness.
pub trait Rng {
    /// The next raw 64-bit sample.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self.next_u64())
    }

    /// A value in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic SplitMix64 generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn spreads_values() {
        let mut r = StdRng::seed_from_u64(7);
        let vals: Vec<u64> = (0..64).map(|_| r.gen()).collect();
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert_eq!(distinct.len(), vals.len());
        assert!(vals.iter().any(|v| v % 2 == 0) && vals.iter().any(|v| v % 2 == 1));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
