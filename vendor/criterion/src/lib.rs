//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides the subset of criterion's API the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Throughput::Elements`, and
//! `Bencher::iter` — backed by a simple wall-clock harness: a short
//! warm-up, then timed batches until ~200 ms or 1000 iterations,
//! reporting mean time per iteration (and element throughput when set).

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter label.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Runs one closure repeatedly and measures it.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`: 3 warm-up calls, then batches until ~200 ms of
    /// samples or 1000 iterations have accumulated.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u32;
        while start.elapsed() < budget && iters < 1000 {
            black_box(routine());
            iters += 1;
        }
        self.elapsed_per_iter = start.elapsed() / iters.max(1);
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    let per = b.elapsed_per_iter;
    let rate = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if per > Duration::ZERO => {
            let unit = if matches!(throughput, Some(Throughput::Bytes(_))) {
                "B/s"
            } else {
                "elem/s"
            };
            format!("  ({:.3e} {unit})", n as f64 / per.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<40} {per:>12.2?}/iter{rate}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.throughput, f);
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) {
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, self.throughput, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_one(&id.into(), None, f);
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn black_box_passes_through() {
        assert_eq!(black_box(42), 42);
    }
}
